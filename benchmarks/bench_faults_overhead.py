"""Fault-injector overhead: an armed-but-idle plan must be (nearly) free.

The fault subsystem rides inside every simulation context once
``REPRO_FAULTS`` is set, so its fault-free cost matters: component
registration at construction time, the per-handshake injector lookup,
and RFTP's recovery bookkeeping must not tax runs whose plan never
fires.  This benchmark runs the fig09 end-to-end experiment twice —
once with no ambient plan, once with a plan whose single fault is
scheduled far beyond the simulated horizon (armed, never fires) — and
asserts

* every paper-anchored check value is **identical** (the armed injector
  changes nothing observable), and
* the armed run's wall time is within a small fraction of the
  fault-free run's.

The in-test ceiling is deliberately looser than the 2% acceptance
target (CI machines are noisy); the committed baseline JSON records the
measured overhead from a quiet machine.  Refresh with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_faults_overhead.py
    cp benchmarks/results/faults_overhead.json benchmarks/baselines/
"""

from __future__ import annotations

import json
import os
import time

from repro.core.experiments import exp_fig09_e2e
from repro.faults.injector import FaultStats
from repro.faults.plan import REPRO_FAULTS_ENV

#: A valid plan whose only fault fires ~31 years into the simulation.
ARMED_IDLE_PLAN = "link-down@link:0,at=1e9"
#: Conservative in-test ceiling; the acceptance target is 2% (ISSUE 5).
MAX_OVERHEAD = float(os.environ.get("REPRO_FAULTS_BENCH_MAX_OVERHEAD", "0.10"))
ROUNDS = 3
#: fig09 quick runs per timed sample (one run is ~25 ms: amortize noise).
ITERS = 10


def _run_once(plan: str | None) -> dict:
    """One timed sample (ITERS fig09 quick runs) under the given plan."""
    saved = os.environ.pop(REPRO_FAULTS_ENV, None)
    try:
        if plan is not None:
            os.environ[REPRO_FAULTS_ENV] = plan
        t0 = time.perf_counter()
        for _ in range(ITERS):
            report = exp_fig09_e2e.run(quick=True, seed=0)
        wall = time.perf_counter() - t0
    finally:
        if saved is None:
            os.environ.pop(REPRO_FAULTS_ENV, None)
        else:
            os.environ[REPRO_FAULTS_ENV] = saved
    return {
        "wall": wall,
        "all_ok": report.all_ok,
        "checks": [(c.metric, repr(c.paper), repr(c.measured), c.ok)
                   for c in report.checks],
    }


def test_faults_overhead(results_dir):
    fired_before = FaultStats.process_totals()

    # Interleave repetitions so machine-load drift hits both arms; score
    # each arm by its best (least-disturbed) wall.
    runs = {"off": [], "armed": []}
    for _ in range(ROUNDS):
        runs["off"].append(_run_once(None))
        runs["armed"].append(_run_once(ARMED_IDLE_PLAN))
    off, armed = runs["off"][0], runs["armed"][0]
    wall_off = min(r["wall"] for r in runs["off"])
    wall_armed = min(r["wall"] for r in runs["armed"])
    overhead = wall_armed / wall_off - 1.0 if wall_off > 0 else float("inf")

    fired = FaultStats.process_totals()
    fired_delta = {k: fired[k] - fired_before[k] for k in fired}
    nothing_fired = all(v == 0 for v in fired_delta.values())
    checks_identical = off["checks"] == armed["checks"]

    checks = [
        ("fig09-checks-identical-under-armed-plan", True, checks_identical,
         checks_identical),
        ("fig09-all-ok-both-arms", True, off["all_ok"] and armed["all_ok"],
         off["all_ok"] and armed["all_ok"]),
        ("no-fault-ever-fired", True, nothing_fired, nothing_fired),
    ]
    all_ok = all(ok for _, _, _, ok in checks)

    payload = {
        "name": "faults_overhead",
        "experiment_id": "faults-overhead",
        "quick": True,
        "ops": 0,
        "wall_seconds": wall_armed,
        "events_per_sec": 0.0,  # wall-ratio benchmark; not events-gated
        "jobs": 1,
        "cache": None,
        "all_ok": all_ok,
        "checks": [
            {"metric": m, "paper": repr(p), "measured": repr(v), "ok": ok}
            for m, p, v, ok in checks
        ],
        # Microbenchmark extras (ignored by the gate, kept for humans):
        "wall_off": wall_off,
        "wall_armed": wall_armed,
        "overhead_fraction": overhead,
        "plan": ARMED_IDLE_PLAN,
        "rounds": ROUNDS,
        "iters": ITERS,
    }
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "faults_overhead.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nfault-injector overhead: off {wall_off * 1e3:.0f} ms, "
          f"armed {wall_armed * 1e3:.0f} ms -> {overhead:+.1%} "
          f"(ceiling {MAX_OVERHEAD:.0%})")

    assert all_ok, "armed-but-idle injector changed results: " + ", ".join(
        f"{m} (expected={p!r}, measured={v!r})"
        for m, p, v, ok in checks if not ok
    )
    assert overhead < MAX_OVERHEAD, (
        f"armed-but-idle fault injector costs {overhead:.1%} "
        f"(ceiling {MAX_OVERHEAD:.0%}; off {wall_off:.3f}s, "
        f"armed {wall_armed:.3f}s)"
    )


# --- journal arm ------------------------------------------------------------------
#
# The write-ahead job journal exists only while a fault injector is
# armed (``BrokerConfig.journal`` is a gate, not an allocation): with no
# injector the journal field must stay None and ``journal=True`` must be
# indistinguishable — in results and in wall time — from
# ``journal=False``.  This is the fault-free-cost gate for the
# crash-tolerant control plane.

#: Journal arm's own ceiling: the code path difference is one attribute
#: check, so "~0%" — but wall clocks are noisy, share the faults ceiling.
JOURNAL_ROUNDS = 3
JOURNAL_ITERS = 6


def _broker_run_once(journal: bool) -> dict:
    """One timed sample: a served broker workload, no injector anywhere."""
    from repro.service import (BrokerConfig, RailFleet, TransferBroker,
                               WorkloadConfig)
    from repro.sim.context import Context
    from repro.util.units import MIB

    saved = os.environ.pop(REPRO_FAULTS_ENV, None)
    try:
        t0 = time.perf_counter()
        for _ in range(JOURNAL_ITERS):
            ctx = Context.create(seed=23)
            fleet = RailFleet(ctx, n_hosts=2)
            broker = TransferBroker(
                ctx, fleet, BrokerConfig(journal=journal),
                workload=WorkloadConfig(rate=60.0, size_mean=64 * MIB))
            broker.serve()
            ctx.sim.run(until=8.0)
            broker.drain()
            ctx.sim.run(until=12.0)
            summary = broker.summary()
            journal_absent = broker.journal is None
        wall = time.perf_counter() - t0
    finally:
        if saved is not None:
            os.environ[REPRO_FAULTS_ENV] = saved
    return {"wall": wall, "summary": summary,
            "journal_absent": journal_absent}


def test_journal_overhead_without_injector(results_dir):
    runs = {"off": [], "on": []}
    for _ in range(JOURNAL_ROUNDS):
        runs["off"].append(_broker_run_once(journal=False))
        runs["on"].append(_broker_run_once(journal=True))
    off, on = runs["off"][0], runs["on"][0]
    wall_off = min(r["wall"] for r in runs["off"])
    wall_on = min(r["wall"] for r in runs["on"])
    overhead = wall_on / wall_off - 1.0 if wall_off > 0 else float("inf")

    identical = off["summary"] == on["summary"]
    gated_off = all(r["journal_absent"] for rs in runs.values() for r in rs)

    checks = [
        ("broker-summary-identical-with-journal-enabled", True, identical,
         identical),
        ("journal-never-materializes-without-injector", True, gated_off,
         gated_off),
    ]
    all_ok = all(ok for _, _, _, ok in checks)

    payload = {
        "name": "journal_overhead",
        "experiment_id": "journal-overhead",
        "quick": True,
        "ops": 0,
        "wall_seconds": wall_on,
        "events_per_sec": 0.0,  # wall-ratio benchmark; not events-gated
        "jobs": 1,
        "cache": None,
        "all_ok": all_ok,
        "checks": [
            {"metric": m, "paper": repr(p), "measured": repr(v), "ok": ok}
            for m, p, v, ok in checks
        ],
        "wall_off": wall_off,
        "wall_on": wall_on,
        "overhead_fraction": overhead,
        "rounds": JOURNAL_ROUNDS,
        "iters": JOURNAL_ITERS,
    }
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "journal_overhead.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"\njournal (no injector) overhead: off {wall_off * 1e3:.0f} ms, "
          f"on {wall_on * 1e3:.0f} ms -> {overhead:+.1%} "
          f"(ceiling {MAX_OVERHEAD:.0%})")

    assert all_ok, "journal=True perturbed a fault-free run: " + ", ".join(
        f"{m} (expected={p!r}, measured={v!r})"
        for m, p, v, ok in checks if not ok
    )
    assert overhead < MAX_OVERHEAD, (
        f"unarmed journal gate costs {overhead:.1%} "
        f"(ceiling {MAX_OVERHEAD:.0%}; off {wall_off:.3f}s, "
        f"on {wall_on:.3f}s)"
    )
