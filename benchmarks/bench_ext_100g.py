"""Extension E4: the 100 GbE upgrade path — front-end alone buys nothing;
the SAN must grow with it (the paper's holistic thesis quantified)."""

from repro.core.experiments import ext_100g


def test_ext_100g(run_experiment):
    run_experiment(ext_100g, "ext_100g")
