"""Ablation A10 (extension): GridFTP mover-count sweep — bandwidth bought
with CPU, never reaching RFTP."""

from repro.core.experiments import ablation_gridftp_procs


def test_ablation_gridftp_procs(run_experiment):
    run_experiment(ablation_gridftp_procs, "ablation_gridftp_procs")
