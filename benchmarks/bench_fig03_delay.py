"""Fig. 3 (quantified): per-block delay breakdown — load / transmit /
offload stage rates and RFTP's pipelining speedup."""

from repro.core.experiments import exp_fig03_delay


def test_fig03(run_experiment):
    run_experiment(exp_fig03_delay, "fig03")
