"""Fig. 8: iSER target CPU, default vs NUMA-tuned
(paper: default writes cost ~3x the CPU)."""

from repro.core.experiments import exp_fig08_iser_cpu


def test_fig08(run_experiment):
    run_experiment(exp_fig08_iser_cpu, "fig08")
