"""Ablation A8 (extension): RFTP credit sweep on the high-BDP WAN."""

from repro.core.experiments import ablation_credits


def test_ablation_credits(run_experiment):
    run_experiment(ablation_credits, "ablation_credits")
