"""Ablation A2: fio threads per LUN; the paper's optimum is 4 (§4.2)."""

from repro.core.experiments import ablation_threads


def test_ablation_threads(run_experiment):
    run_experiment(ablation_threads, "ablation_threads")
