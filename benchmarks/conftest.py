"""Shared benchmark fixtures.

Each benchmark runs one experiment module (the same code the tests
assert on), records its wall time via pytest-benchmark, writes the
rendered paper-vs-measured report to ``benchmarks/results/<name>.txt``
plus a machine-readable ``<name>.json`` (ops, wall seconds, events/sec,
per-check pass/fail) and prints the report (visible with ``pytest -s``
or in the saved files).  The JSON files are what
``scripts/check_bench_regression.py`` compares against the committed
baselines in ``benchmarks/baselines/``.

Two environment knobs wire the benchmarks into :mod:`repro.exec`:

* ``REPRO_BENCH_JOBS=N`` — fan each experiment's independent simulation
  legs across N worker processes.  Off (serial) by default: with
  parallel legs the ``ops``/``events_per_sec`` fields only count the
  parent process's simulator events, so keep it serial when refreshing
  baselines.
* ``REPRO_BENCH_CACHE_DIR=DIR`` — serve legs from the content-addressed
  result cache at DIR.  Off by default so benchmark wall times measure
  simulation, not cache reads.

Whatever the knobs, the measured *check values* are identical — the
executor never changes results, only where and whether they compute.
The JSON payload records the knobs (``jobs``, ``cache``) so a cached or
parallel run is never mistaken for a serial baseline.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.exec import ResultCache, executor
from repro.sim.engine import Simulator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")
BENCH_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE_DIR", "")


@pytest.fixture(scope="session")
def bench_cache() -> ResultCache | None:
    """One shared result cache per session when REPRO_BENCH_CACHE_DIR is set."""
    return ResultCache(BENCH_CACHE_DIR) if BENCH_CACHE_DIR else None


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_experiment(benchmark, results_dir, bench_cache):
    """Benchmark an experiment module and persist its report + JSON."""

    def _run(module, name: str, quick: bool | None = None):
        if quick is None:
            quick = os.environ.get("REPRO_FULL", "") != "1"

        measured = {}

        def _timed(**kwargs):
            events_before = Simulator.events_processed_total
            t0 = time.perf_counter()
            with executor(jobs=BENCH_JOBS, cache=bench_cache):
                rep = module.run(**kwargs)
            measured["wall_seconds"] = time.perf_counter() - t0
            measured["events"] = Simulator.events_processed_total - events_before
            return rep

        report = benchmark.pedantic(
            _timed, kwargs={"quick": quick}, rounds=1, iterations=1
        )
        text = report.render()

        wall = measured["wall_seconds"]
        events = measured["events"]
        payload = {
            "name": name,
            "experiment_id": report.experiment_id,
            "quick": quick,
            "ops": events,
            "wall_seconds": wall,
            "events_per_sec": events / wall if wall > 0 else 0.0,
            "jobs": BENCH_JOBS,
            "cache": bench_cache.stats.as_dict() if bench_cache else None,
            "all_ok": report.all_ok,
            "checks": [
                {
                    "metric": c.metric,
                    "paper": repr(c.paper),
                    "measured": repr(c.measured),
                    "ok": c.ok,
                }
                for c in report.checks
            ],
        }

        # Persist both artifacts *before* asserting, so a diverging run
        # still leaves its report and JSON behind for inspection/CI upload.
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / f"{name}.txt").write_text(text + "\n")
        (results_dir / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print()
        print(text)
        assert report.checks, f"{name} produced no checks"
        # Failed checks must fail the benchmark in quick *and* full mode
        # (REPRO_FULL=1): report every diverging metric with its values.
        failed = [c for c in report.checks if c.ok is False]
        assert not failed, "diverging checks: " + ", ".join(
            f"{c.metric} (paper={c.paper!r}, measured={c.measured!r})"
            for c in failed
        )
        return report

    return _run
