"""Shared benchmark fixtures.

Each benchmark runs one experiment module (the same code the tests
assert on), records its wall time via pytest-benchmark, writes the
rendered paper-vs-measured report to ``benchmarks/results/`` and prints
it (visible with ``pytest -s`` or in the saved files).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_experiment(benchmark, results_dir):
    """Benchmark an experiment module and persist its report."""

    def _run(module, name: str, quick: bool | None = None):
        if quick is None:
            quick = os.environ.get("REPRO_FULL", "") != "1"
        report = benchmark.pedantic(
            module.run, kwargs={"quick": quick}, rounds=1, iterations=1
        )
        text = report.render()
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)
        assert report.checks, f"{name} produced no checks"
        failed = [c for c in report.checks if c.ok is False]
        assert not failed, "diverging checks: " + ", ".join(
            c.metric for c in failed
        )
        return report

    return _run
