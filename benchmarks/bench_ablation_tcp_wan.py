"""Ablation A9 (extension): cubic TCP vs RFTP on the 95 ms ANI loop."""

from repro.core.experiments import ablation_tcp_wan


def test_ablation_tcp_wan(run_experiment):
    run_experiment(ablation_tcp_wan, "ablation_tcp_wan")
