"""Topology-sharded fabric benchmark: 512 hosts, 8 workers vs 1 process.

Runs one datacenter fabric — 64 pods of 8 front-end hosts each, four
WAN tenants per pod funnelling onto a single contended 100 Gbps WAN
link — through both execution paths of :mod:`repro.sim.shard`:

* **sharded** — each pod is a cell with its own event kernel and fluid
  solver; cells run as shard tasks on an 8-worker
  :mod:`repro.exec` process pool and exchange per-epoch boundary flow
  rates over two fixed settle rounds;
* **reference** — the identical fabric in one process, one event loop,
  one fluid graph, where every job start and finish rebalances the
  WAN-coupled giant component spanning all 64 pods.

This is the tentpole number for topology sharding: the cut keeps each
pod's rebalances O(pod flows) instead of O(fleet flows), so the win is
algorithmic — it holds even on a single core, and worker processes
stack on top of it.  The checks pin the deterministic contract: the
sharded fleet completes *exactly* the same job count as the reference,
sheds nothing, and conserves boundary bytes.

The >=4x floor is the acceptance criterion (measured ~5x on one core;
CI machines are noisy, the floor is the guarantee).  Refresh the
committed baseline with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_shard_fabric.py
    cp benchmarks/results/shard_fabric.json benchmarks/baselines/
"""

from __future__ import annotations

import json
import os
import time

from repro.exec.runner import executor
from repro.service.fabric import FabricSpec, run_fabric
from repro.sim.engine import Simulator

SEED = 5
#: The 512-host scenario: heavy WAN coupling (half the fleet's standing
#: flows share the cut link's component) is what the reference path pays
#: for on every event and the sharded path never sees.
SPEC = FabricSpec(
    n_pods=64, hosts_per_pod=8,
    n_wan_links=1, wan_gbps=100.0,
    rate_per_host=3.0, size_mean_mib=4096.0,
    n_tenants=8, wan_tenants=4,
    serve_s=6.0, horizon_s=8.0, epoch_dt=1.0,
    elephants_per_pod=2, elephant_gbps=4.0,
)
#: Deterministic boundary exchange: two fixed settle rounds.
FIXED_ROUNDS = 2
N_WORKERS = int(os.environ.get("REPRO_SHARD_BENCH_JOBS", "8") or "8")
#: The sharding acceptance floor: the 8-worker sharded fabric must beat
#: the single-process reference by at least this much.
MIN_SPEEDUP = float(os.environ.get("REPRO_SHARD_MIN_SPEEDUP", "4.0"))


def _totals(result: dict) -> dict:
    cells = result["cells"]
    return {
        "completed": sum(c["completed"] for c in cells),
        "shed": sum(c["shed"] for c in cells),
        "wan_jobs": sum(c["wan_jobs"] for c in cells),
        "wan_bytes": sum(c["wan_bytes"] for c in cells),
    }


def test_shard_fabric_512_hosts(results_dir):
    assert SPEC.n_hosts == 512

    with executor(jobs=N_WORKERS):
        t0 = time.perf_counter()
        sharded = run_fabric(SPEC, seed=SEED, fixed_rounds=FIXED_ROUNDS)
        wall_sharded = time.perf_counter() - t0

    events_before = Simulator.events_processed_total
    with executor(jobs=1):
        t0 = time.perf_counter()
        reference = run_fabric(SPEC, seed=SEED, sharded=False)
        wall_reference = time.perf_counter() - t0
    events = Simulator.events_processed_total - events_before

    speedup = wall_reference / wall_sharded if wall_sharded > 0 else 0.0
    st, rt = _totals(sharded), _totals(reference)
    exchange = sharded["exchange"]
    bound_bytes = sum(b["bytes"] for b in exchange["boundaries"].values())
    conserve = abs(st["wan_bytes"] - bound_bytes) <= 1e-6 * max(
        1.0, st["wan_bytes"])
    capped = all(b["utilization"] <= 1.0 + 1e-6
                 for b in exchange["boundaries"].values())

    checks = [
        ("completed-jobs-agree", rt["completed"], st["completed"],
         st["completed"] == rt["completed"]),
        ("wan-jobs-agree", rt["wan_jobs"], st["wan_jobs"],
         st["wan_jobs"] == rt["wan_jobs"]),
        ("jobs-shed", 0, st["shed"] + rt["shed"],
         st["shed"] == 0 and rt["shed"] == 0),
        ("exchange-rounds", FIXED_ROUNDS, exchange["rounds"],
         exchange["rounds"] == FIXED_ROUNDS),
        ("boundary-bytes-conserve", True, conserve, conserve),
        ("wan-utilization-capped", True, capped, capped),
    ]
    all_ok = all(ok for _, _, _, ok in checks)

    payload = {
        "name": "shard_fabric",
        "experiment_id": "shard-fabric-512",
        "quick": True,
        "ops": events,
        "wall_seconds": wall_sharded,
        "events_per_sec": events / wall_sharded if wall_sharded > 0 else 0.0,
        "jobs": N_WORKERS,
        "cache": None,
        "all_ok": all_ok,
        "checks": [
            {"metric": m, "paper": repr(p), "measured": repr(v), "ok": ok}
            for m, p, v, ok in checks
        ],
        # Microbenchmark extras (ignored by the gate, kept for humans):
        "wall_sharded": wall_sharded,
        "wall_reference": wall_reference,
        "speedup": speedup,
        "n_hosts": SPEC.n_hosts,
        "n_pods": SPEC.n_pods,
        "n_shards": exchange["n_shards"],
        "completed": st["completed"],
    }
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "shard_fabric.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nshard fabric 512 hosts: reference {wall_reference:.2f} s "
          f"(1 process), sharded {wall_sharded:.2f} s ({N_WORKERS} workers, "
          f"{exchange['rounds']} rounds) -> {speedup:.1f}x, "
          f"{st['completed']} jobs completed in both")

    assert all_ok, "shard fabric diverged: " + ", ".join(
        f"{m} (expected={p!r}, measured={v!r})"
        for m, p, v, ok in checks if not ok
    )
    assert speedup >= MIN_SPEEDUP, (
        f"shard fabric speedup {speedup:.1f}x below floor "
        f"{MIN_SPEEDUP:.1f}x (reference {wall_reference:.2f}s, "
        f"sharded {wall_sharded:.2f}s)"
    )
