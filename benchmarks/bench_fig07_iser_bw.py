"""Fig. 7: iSER bandwidth, default vs NUMA-tuned, read & write x block size
(paper: +7.6% read, +19% write, tuned write peak 94.8 Gbps)."""

from repro.core.experiments import exp_fig07_iser_bw


def test_fig07(run_experiment):
    run_experiment(exp_fig07_iser_bw, "fig07")
