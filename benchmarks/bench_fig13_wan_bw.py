"""Fig. 13: RFTP bandwidth over the 40G/95ms ANI WAN, block size x streams
(paper: 97% of raw at large blocks; credit-limited at small)."""

from repro.core.experiments import exp_fig13_wan_bw


def test_fig13(run_experiment):
    run_experiment(exp_fig13_wan_bw, "fig13")
