"""Figs. 5 & 6: testbed connectivity — every edge of the wiring diagrams."""

from repro.core.experiments import exp_fig05_connectivity


def test_fig05(run_experiment):
    run_experiment(exp_fig05_connectivity, "fig05")
