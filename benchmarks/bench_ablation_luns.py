"""Ablation A5: LUN count sweep; multiple LUNs unlock both IB links (§4.1)."""

from repro.core.experiments import ablation_luns


def test_ablation_luns(run_experiment):
    run_experiment(ablation_luns, "ablation_luns")
