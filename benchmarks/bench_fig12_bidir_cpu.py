"""Fig. 12: bi-directional CPU breakdown
(paper: GridFTP CPU ~doubles for +33% throughput)."""

from repro.core.experiments import exp_fig12_bidir_cpu


def test_fig12(run_experiment):
    run_experiment(exp_fig12_bidir_cpu, "fig12")
