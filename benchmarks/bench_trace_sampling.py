"""Sampler microbenchmark: analytic backfill vs per-tick event sampling.

Runs the paper-scale (``quick=False``) fig13 + fig14 WAN sweeps — the
most probe-dense experiments in the repository (a block-size x streams
grid, each cell carrying a 1 Hz throughput probe over 300 simulated
seconds) — once per sampler backend, with the schedule repeated
``INNER`` times per leg so the walls are long enough to time reliably.
Legs are interleaved across ``REPS`` repetitions so machine-load drift
hits both backends; each backend scores its best (least-disturbed) wall.

The JSON payload records both walls and the speedup; the checks assert
the two backends produced byte-identical paper-vs-measured values (the
backfill sampler replaces *when* counters are read, never the dynamics)
and exact deterministic sampler counters, so the regression gate catches
both a performance collapse (events/sec) and a divergence (check drift).

ISSUE 4's acceptance floor is 3x on these workloads (typically ~3.8x is
measured); on a noisy machine override with::

    REPRO_SAMPLING_BENCH_MIN_SPEEDUP=2 \\
        PYTHONPATH=src python -m pytest -q benchmarks/bench_trace_sampling.py

Refresh the committed baseline with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_trace_sampling.py
    cp benchmarks/results/trace_sampling.json benchmarks/baselines/
"""

from __future__ import annotations

import json
import os
import time

from repro.core.experiments import exp_fig13_wan_bw, exp_fig14_wan_cpu
from repro.sim import Simulator
from repro.sim.sampling import SamplerHub

#: Full-scale fig13+fig14 runs per timed leg (stacks ~30-100 ms walls
#: into something a wall clock can resolve).
INNER = 4
#: Interleaved repetitions; each backend keeps its best wall.
REPS = 3
SEED = 20130417  # same vintage as bench_fluid_solver; any fixed value works
#: In-test floor — the ISSUE 4 acceptance target itself (3x), because the
#: measured margin (~3.8x) leaves headroom even on shared CI machines.
MIN_SPEEDUP = float(os.environ.get("REPRO_SAMPLING_BENCH_MIN_SPEEDUP", "3.0"))


def _run_leg(sampler: str) -> dict:
    """INNER paper-scale fig13+fig14 runs under one backend."""
    os.environ["REPRO_SAMPLER"] = sampler
    events_before = Simulator.events_processed_total
    totals_before = SamplerHub.process_totals()
    reports = []
    t0 = time.perf_counter()
    for _ in range(INNER):
        reports.append(exp_fig13_wan_bw.run(quick=False, seed=SEED % 1000))
        reports.append(exp_fig14_wan_cpu.run(quick=False, seed=SEED % 1000))
    wall = time.perf_counter() - t0
    totals_after = SamplerHub.process_totals()
    return {
        "wall": wall,
        "events": Simulator.events_processed_total - events_before,
        "backfilled": (totals_after["samples_backfilled"]
                       - totals_before["samples_backfilled"]),
        "all_ok": all(r.all_ok for r in reports),
        # Byte-level fingerprint of every paper-vs-measured value.
        "measured": [(c.metric, repr(c.measured))
                     for r in reports for c in r.checks],
    }


def test_trace_sampling_backfill(results_dir):
    saved = os.environ.get("REPRO_SAMPLER")
    runs = {"event": [], "backfill": []}
    try:
        for _ in range(REPS):
            for sampler in ("event", "backfill"):
                runs[sampler].append(_run_leg(sampler))
    finally:
        if saved is None:
            os.environ.pop("REPRO_SAMPLER", None)
        else:
            os.environ["REPRO_SAMPLER"] = saved

    ev, bf = runs["event"][0], runs["backfill"][0]
    wall_event = min(r["wall"] for r in runs["event"])
    wall_backfill = min(r["wall"] for r in runs["backfill"])
    speedup = wall_event / wall_backfill if wall_backfill > 0 else 0.0

    per_run = bf["backfilled"] // INNER
    checks = [
        ("experiments-all-ok", True, ev["all_ok"] and bf["all_ok"],
         ev["all_ok"] and bf["all_ok"]),
        ("measured-values-identical", True, ev["measured"] == bf["measured"],
         ev["measured"] == bf["measured"]),
        ("samples-backfilled-per-run", per_run, per_run, per_run > 0),
        ("event-backend-backfills-nothing", 0, ev["backfilled"],
         ev["backfilled"] == 0),
        ("backfill-skips-heap-events", True, bf["events"] < ev["events"],
         bf["events"] < ev["events"]),
    ]
    all_ok = all(ok for _, _, _, ok in checks)

    payload = {
        "name": "trace_sampling",
        "experiment_id": "trace-sampling-backfill",
        "quick": False,
        "ops": bf["events"],
        "wall_seconds": wall_backfill,
        "events_per_sec": (bf["events"] / wall_backfill
                           if wall_backfill > 0 else 0.0),
        "jobs": 1,
        "cache": None,
        "all_ok": all_ok,
        "checks": [
            {"metric": m, "paper": repr(p), "measured": repr(v), "ok": ok}
            for m, p, v, ok in checks
        ],
        # Microbenchmark extras (ignored by the gate, kept for humans):
        "wall_event": wall_event,
        "wall_backfill": wall_backfill,
        "speedup": speedup,
        "inner_runs": INNER,
        "events_event": ev["events"],
        "samples_backfilled": bf["backfilled"],
    }
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "trace_sampling.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"\ntrace sampling (fig13+fig14 full x{INNER}): "
          f"event {wall_event * 1e3:.1f} ms, "
          f"backfill {wall_backfill * 1e3:.1f} ms -> {speedup:.2f}x "
          f"({per_run} samples backfilled per run, "
          f"{ev['events'] - bf['events']} heap events skipped per leg)")

    assert all_ok, "sampler backends diverged: " + ", ".join(
        f"{m} (expected={p!r}, got={v!r})"
        for m, p, v, ok in checks if not ok
    )
    assert speedup >= MIN_SPEEDUP, (
        f"backfill speedup {speedup:.2f}x below floor {MIN_SPEEDUP:.2f}x "
        f"(event {wall_event:.4f}s, backfill {wall_backfill:.4f}s)"
    )
