"""Extension E6: transfer-service capacity curves — sustained jobs/s and
job-latency percentiles vs fleet size, NUMA-aware broker vs blind baseline."""

from repro.core.experiments import ext_service


def test_ext_service(run_experiment):
    run_experiment(ext_service, "ext_service")
