"""Allocator microbenchmark: array vs reference solver under flow churn.

Unlike the figure benchmarks this one does not run an experiment module:
it drives :class:`~repro.sim.fluid.FluidScheduler` directly with a
synthetic high-churn workload (64 resources, 512 flows arriving and
departing, capacity shocks, caps, open-ended flows stopped mid-flight)
— the regime the array solver exists for, where single components grow
to hundreds of flows and the reference solver's per-flow dict walks
dominate.  The identical schedule runs once per solver backend; the
JSON payload records both walls and the speedup, and the checks assert
the two backends agreed on every observable (bytes, completions, charge
totals), so the regression gate catches both a performance collapse
(events/sec) and a divergence (check drift).

The in-test speedup floor is deliberately below the ~2x typically
measured (CI machines are noisy); refresh the committed baseline with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_fluid_solver.py
    cp benchmarks/results/fluid_solver.json benchmarks/baselines/
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.kernel.accounting import CpuAccounting
from repro.sim import FluidFlow, FluidResource, FluidScheduler, Simulator

N_RESOURCES = 64
N_FLOWS = 512
SEED = 20130417  # SC'13 submission-season vintage; any fixed value works
#: Conservative in-test floor; the acceptance target is 2x (see ISSUE 3).
MIN_SPEEDUP = float(os.environ.get("REPRO_FLUID_BENCH_MIN_SPEEDUP", "1.25"))


def _build_schedule(rng: random.Random):
    """One deterministic churn schedule, independent of solver backend."""
    flows = []
    for i in range(N_FLOWS):
        start = rng.uniform(0.0, 40.0)
        if rng.random() < 0.8:
            size, stop_after = rng.uniform(50.0, 5000.0), None
        else:  # open-ended flow stopped mid-flight
            size, stop_after = None, rng.uniform(1.0, 30.0)
        # Real streaming paths traverse 5+ fluid resources (host I/O, RDMA
        # links, NUMA interconnect, target I/O); model that width here.
        n_res = rng.randint(3, 7)
        path = [(r, rng.uniform(0.5, 2.0))
                for r in rng.sample(range(N_RESOURCES), n_res)]
        cap = rng.uniform(5.0, 200.0) if rng.random() < 0.3 else None
        charge = ("usr_proto", rng.uniform(1e-4, 1e-3))
        flows.append((start, size, stop_after, path, cap, charge))
    shocks = [(rng.uniform(5.0, 35.0), rng.randrange(N_RESOURCES),
               rng.uniform(40.0, 900.0)) for _ in range(32)]
    return flows, shocks


def _run_once(solver: str, schedule) -> dict:
    """Run the schedule under one backend; return observables + wall."""
    flow_specs, shocks = schedule
    sim = Simulator()
    sched = FluidScheduler(sim, solver=solver)
    resources = [FluidResource(sched, 100.0 + 10.0 * i, f"r{i}")
                 for i in range(N_RESOURCES)]
    ledger = CpuAccounting("bench")

    def starter(delay, flow, stop_after):
        yield sim.timeout(delay)
        sched.start(flow)
        if stop_after is not None:
            yield sim.timeout(stop_after)
            if flow._active:
                sched.stop(flow)

    flows = []
    for i, (start, size, stop_after, path_idx, cap, charge) in enumerate(
            flow_specs):
        path = [(resources[j], w) for j, w in path_idx]
        cat, per_byte = charge
        flow = FluidFlow(path, size=size, cap=cap,
                         charges=[(ledger.account(cat), per_byte)],
                         name=f"f{i}")
        flows.append(flow)
        sim.process(starter(start, flow, stop_after))

    def shocker(when, idx, new_cap):
        yield sim.timeout(when)
        resources[idx].set_capacity(new_cap)

    for when, idx, new_cap in shocks:
        sim.process(shocker(when, idx, new_cap))

    events_before = Simulator.events_processed_total
    t0 = time.perf_counter()
    sim.run(until=200.0)
    sched.settle()
    wall = time.perf_counter() - t0
    for f in flows:
        if f._active:
            sched.stop(f)
    return {
        "wall": wall,
        "events": Simulator.events_processed_total - events_before,
        "transferred": [f.transferred for f in flows],
        "completed": sum(1 for fl in flows if fl.finished_at is not None),
        "finished_at": [fl.finished_at for fl in flows],
        "charge_total": ledger.total_seconds,
        "rebalances": sched.stats.rebalances,
    }


def _agree(a, b, rel=1e-6):
    if a is None or b is None:
        return a is b
    return abs(a - b) <= rel * max(1.0, abs(a), abs(b))


def test_fluid_solver_churn(results_dir):
    schedule = _build_schedule(random.Random(SEED))

    # Interleave repetitions so machine-load drift hits both backends;
    # score each backend by its best (least-disturbed) wall.
    runs = {"python": [], "array": []}
    for _ in range(3):
        for solver in ("python", "array"):
            runs[solver].append(_run_once(solver, schedule))
    py, ar = runs["python"][0], runs["array"][0]
    wall_python = min(r["wall"] for r in runs["python"])
    wall_array = min(r["wall"] for r in runs["array"])
    speedup = wall_python / wall_array if wall_array > 0 else 0.0

    bytes_agree = all(
        _agree(a, b) for a, b in zip(py["transferred"], ar["transferred"])
    )
    times_agree = all(
        _agree(a, b) for a, b in zip(py["finished_at"], ar["finished_at"])
    )
    checks = [
        ("completions", py["completed"], ar["completed"],
         py["completed"] == ar["completed"]),
        ("transferred-bytes-agree", True, bytes_agree, bytes_agree),
        ("completion-times-agree", True, times_agree, times_agree),
        ("charge-totals-agree", True,
         _agree(py["charge_total"], ar["charge_total"]),
         _agree(py["charge_total"], ar["charge_total"])),
        ("rebalances", py["rebalances"], ar["rebalances"],
         py["rebalances"] == ar["rebalances"]),
    ]
    all_ok = all(ok for _, _, _, ok in checks)

    payload = {
        "name": "fluid_solver",
        "experiment_id": "fluid-solver-churn",
        "quick": True,
        "ops": ar["events"],
        "wall_seconds": wall_array,
        "events_per_sec": ar["events"] / wall_array if wall_array > 0 else 0.0,
        "jobs": 1,
        "cache": None,
        "all_ok": all_ok,
        "checks": [
            {"metric": m, "paper": repr(p), "measured": repr(v), "ok": ok}
            for m, p, v, ok in checks
        ],
        # Microbenchmark extras (ignored by the gate, kept for humans):
        "wall_python": wall_python,
        "wall_array": wall_array,
        "speedup": speedup,
        "n_resources": N_RESOURCES,
        "n_flows": N_FLOWS,
    }
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "fluid_solver.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nfluid solver churn: python {wall_python * 1e3:.1f} ms, "
          f"array {wall_array * 1e3:.1f} ms -> {speedup:.2f}x "
          f"({N_RESOURCES} resources, {N_FLOWS} flows, "
          f"{ar['rebalances']} rebalances)")

    assert all_ok, "solver backends diverged: " + ", ".join(
        f"{m} (python={p!r}, array={v!r})"
        for m, p, v, ok in checks if not ok
    )
    assert speedup >= MIN_SPEEDUP, (
        f"array solver speedup {speedup:.2f}x below floor "
        f"{MIN_SPEEDUP:.2f}x (python {wall_python:.4f}s, "
        f"array {wall_array:.4f}s)"
    )
