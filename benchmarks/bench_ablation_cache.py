"""Ablation A6: iperf's small-buffer cache effect (§2.3)."""

from repro.core.experiments import ablation_cache


def test_ablation_cache(run_experiment):
    run_experiment(ablation_cache, "ablation_cache")
