"""Ablation A4: RDMA WRITE vs RDMA READ throughput (~7.5% gap, §4.2)."""

from repro.core.experiments import ablation_rdma_ops


def test_ablation_rdma_ops(run_experiment):
    run_experiment(ablation_rdma_ops, "ablation_rdma_ops")
