"""Fig. 10: end-to-end CPU breakdown, RFTP vs GridFTP
(paper: GridFTP sys-dominated, RFTP user-dominated and far cheaper per Gbps)."""

from repro.core.experiments import exp_fig10_e2e_cpu


def test_fig10(run_experiment):
    run_experiment(exp_fig10_e2e_cpu, "fig10")
