"""Extension E2: calibration sensitivity — the paper's shapes must
survive ±20% perturbation of every calibrated constant."""

from repro.core.experiments import ext_sensitivity


def test_ext_sensitivity(run_experiment):
    run_experiment(ext_sensitivity, "ext_sensitivity")
