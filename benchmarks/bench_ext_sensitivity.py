"""Extension E2 benchmark: the sensitivity grid, gang vs per-task.

The ±20% perturbation grid is the library's densest sweep and the gang
subsystem's flagship workload: every cell shares the grid's structure
and differs only in one calibration constant, so ``REPRO_GANG=auto``
batches the whole grid through the sensitivity gang kernel
(:func:`repro.core.sensitivity.gang_cells`) while ``off`` runs the same
cells one event-kernel task at a time.

Both modes run cold (no result cache), interleaved so machine-load
drift hits both; each is scored by its best wall.  The checks hold the
two modes to *byte-identical* rendered reports — gang execution is a
pure wall-clock optimisation — plus the grid's own shape checks and the
deterministic gang accounting (every cell ganged, nothing defected).

The in-test speedup floor is conservative (CI machines are noisy);
refresh the committed baseline with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_ext_sensitivity.py
    cp benchmarks/results/ext_sensitivity.json benchmarks/baselines/
"""

from __future__ import annotations

import json
import os
import time

from repro.core.experiments import ext_sensitivity
from repro.exec import GangStats, executor
from repro.sim.engine import Simulator

def _min_speedup(quick: bool) -> float:
    """The in-test wall-clock floor for gang vs per-task.

    The gang kernel's end-to-end win is read-set dedup across cells, so
    it scales with how many cells *don't* read the perturbed constant.
    The quick grid deliberately perturbs the most widely-read constants
    (that is what makes it a good smoke), so almost every leg re-runs
    and the honest quick floor is only "not slower"; the full grid adds
    the narrowly-read constants and the dedup win shows (~1.7x measured,
    floored conservatively — CI machines are noisy).  The batched-solver
    tier itself is gated at 5x by bench_gang_solver.
    """
    default = "0.90" if quick else "1.25"
    return float(os.environ.get("REPRO_GANG_BENCH_MIN_SPEEDUP", default))


def _run_once(gang: str, quick: bool) -> dict:
    """One cold run of the grid under one gang mode; observables + wall."""
    gang_before = GangStats.process_totals()
    events_before = Simulator.events_processed_total
    t0 = time.perf_counter()
    with executor(gang=gang):
        report = ext_sensitivity.run(quick=quick)
    wall = time.perf_counter() - t0
    gang_after = GangStats.process_totals()
    return {
        "wall": wall,
        "events": Simulator.events_processed_total - events_before,
        "report": report,
        "text": report.render(),
        "gang": {k: gang_after[k] - gang_before[k] for k in gang_after},
    }


def test_ext_sensitivity_gang(results_dir):
    quick = os.environ.get("REPRO_FULL", "") != "1"
    min_speedup = _min_speedup(quick)
    n_cells = len(ext_sensitivity.plan(quick=quick))

    runs = {"off": [], "auto": []}
    for _ in range(3):
        for mode in ("off", "auto"):
            runs[mode].append(_run_once(mode, quick))
    off, auto = runs["off"][0], runs["auto"][0]
    wall_off = min(r["wall"] for r in runs["off"])
    wall_auto = min(r["wall"] for r in runs["auto"])
    speedup = wall_off / wall_auto if wall_auto > 0 else 0.0

    identical = off["text"] == auto["text"]
    ganged = auto["gang"]["scenarios_ganged"]
    defected = auto["gang"]["scenarios_defected"]
    report = auto["report"]
    checks = [
        {"metric": c.metric, "paper": repr(c.paper),
         "measured": repr(c.measured), "ok": c.ok}
        for c in report.checks
    ] + [
        {"metric": "gang-vs-off reports identical", "paper": repr(True),
         "measured": repr(identical), "ok": identical},
        {"metric": "grid cells ganged", "paper": repr(n_cells),
         "measured": repr(ganged), "ok": ganged == n_cells},
        {"metric": "grid cells defected", "paper": repr(0),
         "measured": repr(defected), "ok": defected == 0},
    ]
    all_ok = all(c["ok"] for c in checks)

    payload = {
        "name": "ext_sensitivity",
        "experiment_id": report.experiment_id,
        "quick": quick,
        "ops": auto["events"],
        "wall_seconds": wall_auto,
        "events_per_sec": auto["events"] / wall_auto if wall_auto > 0 else 0.0,
        "jobs": 1,
        "cache": None,
        "all_ok": all_ok,
        "checks": checks,
        # Gang extras (ignored by the gate, kept for humans):
        "wall_off": wall_off,
        "wall_auto": wall_auto,
        "speedup": speedup,
        "grid_cells": n_cells,
        "gang": auto["gang"],
    }
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "ext_sensitivity.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    (results_dir / "ext_sensitivity.txt").write_text(auto["text"] + "\n")
    print()
    print(auto["text"])
    print(f"\nsensitivity grid ({n_cells} cells): off {wall_off:.2f}s, "
          f"gang {wall_auto:.2f}s -> {speedup:.2f}x "
          f"(ganged {ganged}, defected {defected})")

    assert all_ok, "gang run diverged: " + ", ".join(
        f"{c['metric']} (expected={c['paper']}, measured={c['measured']})"
        for c in checks if not c["ok"]
    )
    assert speedup >= min_speedup, (
        f"gang speedup {speedup:.2f}x below floor {min_speedup:.2f}x "
        f"(off {wall_off:.4f}s, auto {wall_auto:.4f}s)"
    )
