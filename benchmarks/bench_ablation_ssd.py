"""Ablation A1: SSD thermal throttling to ~500 MB/s vs steady tmpfs (§4.1)."""

from repro.core.experiments import ablation_ssd


def test_ablation_ssd(run_experiment):
    run_experiment(ablation_ssd, "ablation_ssd")
