"""§2.3 motivating experiment: STREAM Triad + iperf default vs NUMA-tuned
(paper: 50 GB/s; 83.5 -> 91.8 Gbps; ~35% CPU in copies)."""

from repro.core.experiments import exp_motivating


def test_motivating(run_experiment):
    run_experiment(exp_motivating, "motivating")
