"""Ablation A7 (extension): MTU 1500 vs 9000 — TCP pays per-packet, RDMA only framing."""

from repro.core.experiments import ablation_mtu


def test_ablation_mtu(run_experiment):
    run_experiment(ablation_mtu, "ablation_mtu")
