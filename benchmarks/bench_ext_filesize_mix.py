"""Extension E3: the lots-of-small-files penalty and what pipelining buys."""

from repro.core.experiments import ext_filesize_mix


def test_ext_filesize_mix(run_experiment):
    run_experiment(ext_filesize_mix, "ext_filesize_mix")
