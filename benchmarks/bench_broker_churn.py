"""Churn-coalescing benchmark: burst-heavy fleet serving, eager vs lazy.

Runs one churn-dominated serving scenario — two pods of 8 front-end
hosts whose tenants all egress over the shared WAN (so every job joins
the fabric's one giant fluid component), fed 64-job same-timestamp
arrival bursts of fixed-size transfers — under both churn modes of
:mod:`repro.sim.fluid`:

* **eager** (``REPRO_CHURN=eager``) — the pre-coalescing behavior:
  every flow start and finish re-settles and re-balances its component
  immediately, so a 64-job burst pays 64 full allocation passes and a
  same-instant completion wave pays one more per job;
* **coalesce** (the default) — transitions mark components dirty and
  defer to a single rebalance flushed when the event clock advances,
  so the same burst (dispatched through the broker's bulk
  ``submit_many`` → ``start_many`` path) pays one.

The win is algorithmic — O(instants) instead of O(transitions) full
allocation passes over the WAN-coupled component — and the checks pin
the semantics contract: both modes complete exactly the same jobs,
shed nothing, and produce byte-identical per-pod ledgers.

The >=3x floor is the acceptance criterion (measured ~4x on one core;
CI machines are noisy, the floor is the guarantee).  Refresh the
committed baseline with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_broker_churn.py
    cp benchmarks/results/broker_churn.json benchmarks/baselines/
"""

from __future__ import annotations

import json
import os
import time

from repro.service.fabric import FabricSpec, run_fabric
from repro.sim.engine import Simulator

SEED = 7
#: The churn-heavy serving leg: every tenant is a WAN tenant, so all
#: ~9.6k jobs contend in one uplink+WAN component; 64-job bursts at 24
#: arrival events/s/pod make same-instant transition waves the dominant
#: cost; admission is unconstrained (quota/budget/queue headroom) so
#: the broker, not the admission throttle, sets the churn rate.
SPEC = FabricSpec(
    n_pods=2, hosts_per_pod=8,
    n_wan_links=1, wan_gbps=100.0,
    rate_per_host=3.0, size_mean_mib=4.0, size_dist="fixed", burst=64,
    n_tenants=8, wan_tenants=8,
    tenant_quota=4096, budget_fraction=64.0, max_queue=8192,
    serve_s=2.0, horizon_s=3.5, epoch_dt=1.0,
    elephants_per_pod=2, elephant_gbps=4.0,
)
#: The coalescing acceptance floor: the lazy-settle run must beat the
#: eager run by at least this much on the same scenario.
MIN_SPEEDUP = float(os.environ.get("REPRO_CHURN_MIN_SPEEDUP", "3.0"))


def _run_mode(mode: str) -> tuple[dict, float, int]:
    """One single-process fabric run under REPRO_CHURN=*mode*."""
    saved = os.environ.get("REPRO_CHURN")
    os.environ["REPRO_CHURN"] = mode
    try:
        events_before = Simulator.events_processed_total
        t0 = time.perf_counter()
        result = run_fabric(SPEC, seed=SEED, sharded=False)
        wall = time.perf_counter() - t0
        events = Simulator.events_processed_total - events_before
    finally:
        if saved is None:
            os.environ.pop("REPRO_CHURN", None)
        else:
            os.environ["REPRO_CHURN"] = saved
    return result, wall, events


def _totals(result: dict) -> dict:
    cells = result["cells"]
    return {
        "completed": sum(c["completed"] for c in cells),
        "shed": sum(c["shed"] for c in cells),
        "wan_jobs": sum(c["wan_jobs"] for c in cells),
    }


def test_broker_churn_burst_serving(results_dir):
    eager, wall_eager, _ = _run_mode("eager")
    coalesce, wall_coalesce, events = _run_mode("coalesce")

    speedup = wall_eager / wall_coalesce if wall_coalesce > 0 else 0.0
    et, ct = _totals(eager), _totals(coalesce)
    identical = json.dumps(eager, sort_keys=True, default=str) == json.dumps(
        coalesce, sort_keys=True, default=str)

    checks = [
        ("ledgers-byte-identical", True, identical, identical),
        ("completed-jobs-agree", et["completed"], ct["completed"],
         ct["completed"] == et["completed"]),
        ("wan-jobs-agree", et["wan_jobs"], ct["wan_jobs"],
         ct["wan_jobs"] == et["wan_jobs"]),
        ("jobs-completed-nonzero", True, ct["completed"] > 0,
         ct["completed"] > 0),
        ("jobs-shed", 0, et["shed"] + ct["shed"],
         et["shed"] == 0 and ct["shed"] == 0),
    ]
    all_ok = all(ok for _, _, _, ok in checks)

    payload = {
        "name": "broker_churn",
        "experiment_id": "broker-churn-burst",
        "quick": True,
        "ops": events,
        "wall_seconds": wall_coalesce,
        "events_per_sec": events / wall_coalesce if wall_coalesce > 0 else 0.0,
        "jobs": 1,
        "cache": None,
        "all_ok": all_ok,
        "checks": [
            {"metric": m, "paper": repr(p), "measured": repr(v), "ok": ok}
            for m, p, v, ok in checks
        ],
        # Microbenchmark extras (ignored by the gate, kept for humans):
        "wall_eager": wall_eager,
        "wall_coalesce": wall_coalesce,
        "speedup": speedup,
        "burst": SPEC.burst,
        "n_hosts": SPEC.n_hosts,
        "completed": ct["completed"],
    }
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "broker_churn.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nbroker churn burst serving: eager {wall_eager:.2f} s, "
          f"coalesce {wall_coalesce:.2f} s -> {speedup:.1f}x, "
          f"{ct['completed']} jobs completed in both, "
          f"ledgers identical: {identical}")

    assert all_ok, "churn modes diverged: " + ", ".join(
        f"{m} (expected={p!r}, measured={v!r})"
        for m, p, v, ok in checks if not ok
    )
    assert speedup >= MIN_SPEEDUP, (
        f"churn coalescing speedup {speedup:.1f}x below floor "
        f"{MIN_SPEEDUP:.1f}x (eager {wall_eager:.2f}s, "
        f"coalesce {wall_coalesce:.2f}s)"
    )
