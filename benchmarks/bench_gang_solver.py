"""Batched-solver microbenchmark: 64 scenarios as one NumPy program.

Drives :class:`~repro.sim.fluid.GangFluidProgram` directly with a dense
synthetic grid — 64 scenarios of one 24-resource, 96-flow program whose
capacities sweep a per-scenario scale — against the reference: the same
64 scenarios run one :class:`~repro.sim.fluid.FluidScheduler` event
simulation at a time.  This is the tentpole number for gang execution:
where the scenario axis is pure numerics (no event feedback), batching
replaces S interpreter-driven event loops with one vectorized
water-filling whose rounds cover every scenario at once.

The checks hold every per-scenario observable (bytes, completion times,
charge totals) to 1e-6 against the event kernel — the max-min fair
allocation is unique, so agreement is exact up to float noise — and pin
the deterministic defection count (scenarios whose completion *order*
diverges from the pilot; their numbers still agree, but an event-coupled
caller would have to defect them, so the count is part of the contract).

The ≥5x floor is the acceptance criterion (measured ~100x here; CI
machines are noisy, the floor is the guarantee).  Refresh the committed
baseline with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_gang_solver.py
    cp benchmarks/results/gang_solver.json benchmarks/baselines/
"""

from __future__ import annotations

import json
import os
import random
import time

import numpy as np

from repro.kernel.accounting import CpuAccounting
from repro.sim import FluidFlow, FluidResource, FluidScheduler, Simulator
from repro.sim.fluid import GangFluidProgram

N_SCENARIOS = 64
N_RESOURCES = 24
N_FLOWS = 96
DURATION = 40.0
SEED = 20130417
#: The gang acceptance floor: one batched program must beat S event runs
#: by at least this much on the full grid.
MIN_SPEEDUP = float(os.environ.get("REPRO_GANG_SOLVER_MIN_SPEEDUP", "5.0"))


def _build_grid(rng: random.Random):
    """One deterministic scenario grid, shared by both execution paths."""
    base_caps = [rng.uniform(50.0, 400.0) for _ in range(N_RESOURCES)]
    scale = [0.5 + 1.5 * s / (N_SCENARIOS - 1) for s in range(N_SCENARIOS)]
    flows = []
    for _ in range(N_FLOWS):
        n_res = rng.randint(2, 5)
        path = [(r, rng.uniform(0.5, 2.0))
                for r in rng.sample(range(N_RESOURCES), n_res)]
        size = rng.uniform(200.0, 8000.0) if rng.random() < 0.8 else None
        cap = rng.uniform(10.0, 300.0) if rng.random() < 0.3 else None
        charge = ("usr_proto", rng.uniform(1e-4, 1e-3))
        flows.append((path, size, cap, charge))
    return base_caps, scale, flows


def _run_scalar(grid) -> dict:
    """All scenarios, one FluidScheduler event simulation at a time."""
    base_caps, scale, flows = grid
    transferred, finished, charge_totals = [], [], []
    events_before = Simulator.events_processed_total
    t0 = time.perf_counter()
    for s in range(N_SCENARIOS):
        sim = Simulator()
        sched = FluidScheduler(sim)
        resources = [FluidResource(sched, c * scale[s], f"r{i}")
                     for i, c in enumerate(base_caps)]
        ledger = CpuAccounting("gangbench")
        objs = []
        for i, (path, size, cap, (cat, per_byte)) in enumerate(flows):
            flow = FluidFlow([(resources[r], w) for r, w in path],
                             size=size, cap=cap,
                             charges=[(ledger.account(cat), per_byte)],
                             name=f"f{i}")
            objs.append(flow)
            sched.start(flow)
        sim.run(until=DURATION)
        sched.settle()
        transferred.append([f.transferred for f in objs])
        finished.append([
            f.finished_at if f.size is not None and not f._active else None
            for f in objs
        ])
        charge_totals.append(ledger.total_seconds)
        for f in objs:
            if f._active:
                sched.stop(f)
    return {
        "wall": time.perf_counter() - t0,
        "events": Simulator.events_processed_total - events_before,
        "transferred": transferred,
        "finished_at": finished,
        "charge_totals": charge_totals,
    }


def _run_gang(grid) -> dict:
    """All scenarios as one batched GangFluidProgram."""
    base_caps, scale, flows = grid
    scale_v = np.asarray(scale)
    t0 = time.perf_counter()
    program = GangFluidProgram(N_SCENARIOS)
    rids = [program.add_resource(c * scale_v, name=f"r{i}")
            for i, c in enumerate(base_caps)]
    for i, (path, size, cap, (cat, per_byte)) in enumerate(flows):
        program.add_flow([(rids[r], w) for r, w in path], size=size, cap=cap,
                         charges=[(cat, per_byte)], name=f"f{i}")
    result = program.run_steady(DURATION)
    return {
        "wall": time.perf_counter() - t0,
        "result": result,
        "charge_totals": program.charged["usr_proto"],
    }


def _agree(a, b, rel=1e-6):
    if a is None or b is None:
        return a is b
    return abs(a - b) <= rel * max(1.0, abs(a), abs(b))


def test_gang_solver_grid(results_dir):
    grid = _build_grid(random.Random(SEED))

    # Interleave repetitions so machine-load drift hits both paths;
    # score each path by its best (least-disturbed) wall.
    runs = {"scalar": [], "gang": []}
    for _ in range(3):
        runs["scalar"].append(_run_scalar(grid))
        runs["gang"].append(_run_gang(grid))
    sc, gg = runs["scalar"][0], runs["gang"][0]
    wall_scalar = min(r["wall"] for r in runs["scalar"])
    wall_gang = min(r["wall"] for r in runs["gang"])
    speedup = wall_scalar / wall_gang if wall_gang > 0 else 0.0

    result = gg["result"]
    bytes_agree = all(
        _agree(result.transferred[s, j], sc["transferred"][s][j])
        for s in range(N_SCENARIOS) for j in range(N_FLOWS)
    )
    times_agree = all(
        _agree(result.finished_at[s, j]
               if np.isfinite(result.finished_at[s, j]) else None,
               sc["finished_at"][s][j])
        for s in range(N_SCENARIOS) for j in range(N_FLOWS)
    )
    charges_agree = all(
        _agree(gg["charge_totals"][s], sc["charge_totals"][s])
        for s in range(N_SCENARIOS)
    )
    defected = int(result.defected.sum())
    checks = [
        ("transferred-bytes-agree", True, bytes_agree, bytes_agree),
        ("completion-times-agree", True, times_agree, times_agree),
        ("charge-totals-agree", True, charges_agree, charges_agree),
        # Deterministic for the fixed seed: caps stay fixed while
        # capacities sweep, so completion order shifts in a known subset.
        ("order-divergent scenarios", 45, defected, defected == 45),
        ("rounds", result.rounds, result.rounds,
         result.rounds <= N_FLOWS + 1),
    ]
    all_ok = all(ok for _, _, _, ok in checks)

    payload = {
        "name": "gang_solver",
        "experiment_id": "gang-solver-grid",
        "quick": True,
        "ops": N_SCENARIOS * N_FLOWS,
        "wall_seconds": wall_gang,
        "events_per_sec": (N_SCENARIOS * N_FLOWS / wall_gang
                           if wall_gang > 0 else 0.0),
        "jobs": 1,
        "cache": None,
        "all_ok": all_ok,
        "checks": [
            {"metric": m, "paper": repr(p), "measured": repr(v), "ok": ok}
            for m, p, v, ok in checks
        ],
        # Microbenchmark extras (ignored by the gate, kept for humans):
        "wall_scalar": wall_scalar,
        "wall_gang": wall_gang,
        "speedup": speedup,
        "scalar_events": sc["events"],
        "n_scenarios": N_SCENARIOS,
        "n_resources": N_RESOURCES,
        "n_flows": N_FLOWS,
    }
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "gang_solver.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"\ngang solver grid: scalar {wall_scalar * 1e3:.1f} ms "
          f"({N_SCENARIOS} event runs), gang {wall_gang * 1e3:.1f} ms "
          f"-> {speedup:.1f}x ({result.rounds} rounds, "
          f"{defected} order-divergent)")

    assert all_ok, "gang solver diverged: " + ", ".join(
        f"{m} (expected={p!r}, measured={v!r})"
        for m, p, v, ok in checks if not ok
    )
    assert speedup >= MIN_SPEEDUP, (
        f"gang solver speedup {speedup:.1f}x below floor "
        f"{MIN_SPEEDUP:.1f}x (scalar {wall_scalar:.3f}s, "
        f"gang {wall_gang:.4f}s)"
    )
