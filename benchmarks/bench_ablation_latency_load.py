"""Ablation A11 (extension): I/O latency vs offered load at the target
(queueing once the worker pool saturates)."""

from repro.core.experiments import ablation_latency_load


def test_ablation_latency_load(run_experiment):
    run_experiment(ablation_latency_load, "ablation_latency_load")
