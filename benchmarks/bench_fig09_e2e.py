"""Fig. 9: end-to-end throughput, RFTP vs GridFTP over 3x40G + iSER SANs
(paper: 91 vs 29 Gbps; fio ceiling 94.8)."""

from repro.core.experiments import exp_fig09_e2e


def test_fig09(run_experiment):
    run_experiment(exp_fig09_e2e, "fig09")
