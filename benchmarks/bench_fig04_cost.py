"""Fig. 4: CPU cost breakdown of RFTP (RDMA) vs iperf (TCP) at ~39 Gbps
(paper: 122% vs 642% total CPU; copies 0% vs 213%)."""

from repro.core.experiments import exp_fig04_cost


def test_fig04(run_experiment):
    run_experiment(exp_fig04_cost, "fig04")
