"""Ablation A12 (extension): composed value of NUMA tuning end to end —
the untuned penalty lives entirely in the target's copy path."""

from repro.core.experiments import ablation_tuning_value


def test_ablation_tuning_value(run_experiment):
    run_experiment(ablation_tuning_value, "ablation_tuning_value")
