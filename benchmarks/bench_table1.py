"""Table 1: testbed host configuration consistency check."""

from repro.core.experiments import exp_table1


def test_table1(run_experiment):
    run_experiment(exp_table1, "table1")
