"""Ablation A3: raw vs ext4 vs XFS over iSER (§4.3)."""

from repro.core.experiments import ablation_fs


def test_ablation_fs(run_experiment):
    run_experiment(ablation_fs, "ablation_fs")
