"""Fig. 11: bi-directional end-to-end throughput
(paper: RFTP +83%, GridFTP +33% over unidirectional)."""

from repro.core.experiments import exp_fig11_bidir


def test_fig11(run_experiment):
    run_experiment(exp_fig11_bidir, "fig11")
