"""Extension E1: storage-to-storage RFTP over the 95 ms WAN — validates
the paper's §4.4 deployment claim the authors could not test."""

from repro.core.experiments import ext_wan_e2e


def test_ext_wan_e2e(run_experiment):
    run_experiment(ext_wan_e2e, "ext_wan_e2e")
