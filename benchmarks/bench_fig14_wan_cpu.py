"""Fig. 14: RFTP WAN CPU for sender (a) and receiver (b)
(paper: per-byte CPU falls as block size grows)."""

from repro.core.experiments import exp_fig14_wan_cpu


def test_fig14(run_experiment):
    run_experiment(exp_fig14_wan_cpu, "fig14")
