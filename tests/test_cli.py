"""Tests for the CLI (`python -m repro`) and the EXPERIMENTS.md generator."""


from repro.__main__ import main
from repro.core.reportgen import generate_experiments_md


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig09" in out and "ablation-ssd" in out and "ext-wan-e2e" in out


def test_cli_run_single(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "OK" in out


def test_cli_run_unknown(capsys):
    assert main(["run", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_cli_run_with_seed(capsys):
    assert main(["run", "fig04", "--seed", "3"]) == 0
    assert "fig04" in capsys.readouterr().out


def test_cli_report_writes_file(tmp_path, capsys):
    out_file = tmp_path / "EXP.md"
    assert main(["report", "-o", str(out_file)]) == 0
    text = out_file.read_text()
    assert "Scorecard" in text
    assert "fig09" in text
    assert "❌" not in text  # nothing diverges


def test_generator_counts_checks():
    text = generate_experiments_md(quick=True)
    assert "Scorecard:" in text
    # scorecard reads "N/N" with N == N (all reproduce)
    line = next(ln for ln in text.splitlines() if "Scorecard" in ln)
    nums = line.split("Scorecard:")[1].split()[0]
    ok, total = nums.split("/")
    assert ok == total
    assert int(total) >= 65
