"""Tests for the CLI (`python -m repro`) and the EXPERIMENTS.md generator."""


import pytest

from repro.__main__ import main
from repro.core.reportgen import generate_experiments_md


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig09" in out and "ablation-ssd" in out and "ext-wan-e2e" in out


def test_cli_run_single(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "OK" in out


def test_cli_run_unknown(capsys):
    assert main(["run", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_cli_run_with_seed(capsys):
    assert main(["run", "fig04", "--seed", "3"]) == 0
    assert "fig04" in capsys.readouterr().out


def test_cli_report_writes_file(tmp_path, capsys):
    out_file = tmp_path / "EXP.md"
    assert main(["report", "-o", str(out_file)]) == 0
    text = out_file.read_text()
    assert "Scorecard" in text
    assert "fig09" in text
    assert "❌" not in text  # nothing diverges


def test_generator_counts_checks():
    text = generate_experiments_md(quick=True)
    assert "Scorecard:" in text
    # scorecard reads "N/N" with N == N (all reproduce)
    line = next(ln for ln in text.splitlines() if "Scorecard" in ln)
    nums = line.split("Scorecard:")[1].split()[0]
    ok, total = nums.split("/")
    assert ok == total
    assert int(total) >= 65


@pytest.mark.parametrize("bad", ["0", "-2", "two"])
def test_cli_rejects_bad_jobs_count(bad, capsys):
    with pytest.raises(SystemExit) as exc:
        main(["report", "--jobs", bad])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "--jobs" in err


def test_cli_jobs_accepts_auto():
    import argparse

    from repro.__main__ import _jobs_type

    assert _jobs_type("auto") == 0  # the executor's per-core sentinel
    assert _jobs_type("3") == 3
    with pytest.raises(argparse.ArgumentTypeError):
        _jobs_type("0")


def test_cli_rejects_bad_service_policy(capsys):
    assert main(["run", "table1", "--service-policy", "bogus"]) == 2
    assert "bad --service-policy" in capsys.readouterr().err


def test_cli_rejects_bad_arrival_rate(capsys):
    assert main(["run", "table1", "--arrival-rate", "-5"]) == 2
    assert "bad --arrival-rate" in capsys.readouterr().err


def test_cli_service_flags_exported(monkeypatch, capsys):
    # main() writes os.environ directly, so clean up with pop (a
    # monkeypatch.delenv here would *restore* the leaked value at
    # teardown and poison later tests' plan() calls).
    import os
    monkeypatch.delenv("REPRO_SERVICE_POLICY", raising=False)
    monkeypatch.delenv("REPRO_SERVICE_ARRIVAL", raising=False)
    try:
        assert main(["run", "table1", "--service-policy", "fifo",
                     "--arrival-rate", "25"]) == 0
        assert os.environ["REPRO_SERVICE_POLICY"] == "fifo"
        assert float(os.environ["REPRO_SERVICE_ARRIVAL"]) == 25.0
    finally:
        os.environ.pop("REPRO_SERVICE_POLICY", None)
        os.environ.pop("REPRO_SERVICE_ARRIVAL", None)


def test_footer_stats_suppress_idle_subsystems():
    """Disabled subsystems report None, so their footer lines vanish."""
    stats: dict = {}
    generate_experiments_md(quick=True, only={"table1"}, stats=stats)
    assert stats["faults"] is None     # no plan, nothing injected
    assert stats["service"] is None    # no broker ran
    assert stats["fluid"] is not None  # always reported


def test_footer_stats_report_active_subsystems():
    stats: dict = {}
    generate_experiments_md(quick=True, only={"service", "recovery"},
                            stats=stats)
    assert stats["service"] is not None
    assert stats["service"]["submitted"] > 0
    assert stats["faults"] is not None
    assert stats["faults"]["faults_injected"] > 0
