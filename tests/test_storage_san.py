"""Integration tests for the iSER SAN: target + initiator + sessions."""

import numpy as np
import pytest

from repro.hw import backend_lan_host, frontend_lan_host
from repro.kernel import NumaPolicy, SimProcess
from repro.net.topology import wire_san
from repro.sim.context import Context
from repro.sim.fluid import FluidFlow
from repro.storage import IoRequest, IserInitiator, IserTarget
from repro.util.units import GB, MIB, to_gbps


def build_san(tuning="numa", n_luns=6, lun_size=GB, store_data=False, seed=13):
    c = Context.create(seed=seed)
    front = frontend_lan_host(c, "front", with_ib=True)
    back = backend_lan_host(c, "back")
    wire_san(c, front, back)
    target = IserTarget(c, back, tuning=tuning, n_links=2)
    for _ in range(n_luns):
        target.create_lun(lun_size, store_data=store_data)
    initiator = IserInitiator(c, front, target)
    c.sim.run(until=initiator.login_all())
    return c, front, back, target, initiator


# --- construction -----------------------------------------------------------------


def test_target_numa_tuning_one_process_per_node():
    c, front, back, target, initiator = build_san(tuning="numa")
    assert len(target.processes) == 2
    assert target.processes[0].cpu_policy == NumaPolicy.bind(0)
    assert target.remote_shared_fraction() == 0.0


def test_target_default_single_process():
    c, front, back, target, initiator = build_san(tuning="default")
    assert len(target.processes) == 1
    assert target.processes[0].cpu_policy == NumaPolicy.default()
    assert target.remote_shared_fraction() > 0


def test_luns_balanced_across_links():
    c, front, back, target, initiator = build_san(tuning="numa", n_luns=6)
    links = [lun.link_index for lun in target.luns]
    assert links == [0, 1, 0, 1, 0, 1]


def test_numa_luns_pinned_to_link_local_node():
    c, front, back, target, initiator = build_san(tuning="numa", n_luns=4)
    for lun in target.luns:
        assert lun.node_fractions == {lun.link_index: 1.0}


def test_default_luns_spread_over_nodes():
    c, front, back, target, initiator = build_san(tuning="default", n_luns=2)
    for lun in target.luns:
        assert lun.node_fractions == {0: 0.5, 1: 0.5}


def test_initiator_surfaces_all_luns():
    c, front, back, target, initiator = build_san(n_luns=6)
    assert sorted(initiator.devices) == [0, 1, 2, 3, 4, 5]
    dev = initiator.device(0)
    assert dev.capacity_bytes == GB
    with pytest.raises(KeyError):
        initiator.device(99)


# --- event-level I/O with real bytes ---------------------------------------------------


def test_san_write_read_round_trip_real_bytes():
    c, front, back, target, initiator = build_san(
        n_luns=2, lun_size=4 * MIB, store_data=True
    )
    dev = initiator.device(0)
    proc = SimProcess(front, "app", cpu_policy=NumaPolicy.bind(0))
    t = proc.spawn_thread()

    payload = (np.arange(1 * MIB, dtype=np.int64) % 251).astype(np.uint8)
    done = dev.submit(IoRequest(True, offset=512 * 1024, length=1 * MIB,
                                data=payload.copy()), thread=t)
    c.sim.run(until=done)

    out = np.zeros(1 * MIB, dtype=np.uint8)
    done = dev.submit(IoRequest(False, offset=512 * 1024, length=1 * MIB, data=out),
                      thread=t)
    c.sim.run(until=done)
    assert (out == payload).all()
    # the LUN's backing store holds the bytes at the right offset
    lun = target.luns[0]
    assert (lun.data[512 * 1024 : 512 * 1024 + 1 * MIB] == payload).all()


def test_san_io_beyond_lun_fails():
    c, front, back, target, initiator = build_san(n_luns=1, lun_size=4 * MIB)
    dev = initiator.device(0)
    with pytest.raises(ValueError):
        dev.submit(IoRequest(False, offset=0, length=8 * MIB))


# --- fluid streaming --------------------------------------------------------------------


def run_fio_like(c, initiator, target, is_write, block_size=4 * MIB,
                 threads_per_lun=4, duration=30.0):
    """Start one stream per (LUN, thread) and measure aggregate rate."""
    front = initiator.machine
    flows = []
    for lun in target.luns:
        dev = initiator.device(lun.lun_id)
        dev.threads_per_lun = threads_per_lun
        proc = SimProcess(front, f"fio{lun.lun_id}",
                          cpu_policy=NumaPolicy.bind(lun.link_index % front.n_nodes))
        for k in range(threads_per_lun):
            t = proc.spawn_thread()
            spec = dev.bulk_path(is_write, t, block_size)
            flow = FluidFlow(spec.path, size=None, cap=spec.cap,
                             charges=spec.charges,
                             name=f"fio-l{lun.lun_id}t{k}")
            c.fluid.start(flow)
            flows.append(flow)
    t0 = c.sim.now
    c.sim.run(until=t0 + duration)
    c.fluid.settle()
    total = sum(f.transferred for f in flows)
    for f in flows:
        c.fluid.stop(f)
    return total / duration


def test_streaming_read_reaches_tens_of_gbps():
    c, front, back, target, initiator = build_san(tuning="numa")
    rate = run_fio_like(c, initiator, target, is_write=False)
    assert to_gbps(rate) > 60  # two FDR links; expect high aggregate


def test_numa_tuning_improves_write_more_than_read():
    """The Fig. 7 asymmetry: +19% writes vs +7.6% reads."""
    rates = {}
    for tuning in ("numa", "default"):
        for is_write in (False, True):
            c, front, back, target, initiator = build_san(tuning=tuning)
            rates[(tuning, is_write)] = run_fio_like(
                c, initiator, target, is_write=is_write
            )
    read_gain = rates[("numa", False)] / rates[("default", False)]
    write_gain = rates[("numa", True)] / rates[("default", True)]
    assert write_gain > read_gain > 1.0
    assert write_gain > 1.10  # paper: ~1.19
    assert read_gain < 1.15  # paper: ~1.076


def test_read_faster_than_write_when_tuned():
    """RDMA WRITE (serving reads) beats RDMA READ (serving writes), §4.2."""
    c1, _, _, tgt1, ini1 = build_san(tuning="numa", seed=20)
    read_rate = run_fio_like(c1, ini1, tgt1, is_write=False)
    c2, _, _, tgt2, ini2 = build_san(tuning="numa", seed=21)
    write_rate = run_fio_like(c2, ini2, tgt2, is_write=True)
    assert read_rate > write_rate
    assert read_rate / write_rate == pytest.approx(1.075, rel=0.08)


def test_default_write_burns_more_target_cpu():
    """Fig. 8: default binding costs ~3x the CPU on writes."""
    cpus = {}
    for tuning in ("numa", "default"):
        c, front, back, target, initiator = build_san(tuning=tuning)
        run_fio_like(c, initiator, target, is_write=True, duration=20.0)
        cpus[tuning] = target.accounting().total_seconds
    assert cpus["default"] > 1.8 * cpus["numa"]


def test_small_blocks_slower_than_large():
    c1, _, _, tgt1, ini1 = build_san(tuning="numa", seed=30)
    small = run_fio_like(c1, ini1, tgt1, is_write=False, block_size=64 * 1024,
                         duration=10.0)
    c2, _, _, tgt2, ini2 = build_san(tuning="numa", seed=31)
    large = run_fio_like(c2, ini2, tgt2, is_write=False, block_size=8 * MIB,
                         duration=10.0)
    assert large > small
