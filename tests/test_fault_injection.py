"""Fault injection: link failures/degradation, the repro.faults
subsystem (plans, injector, every fault kind), RFTP recovery/failover,
and the differential guarantees (empty plan == no subsystem; RNG plans
deterministic per seed)."""

import numpy as np
import pytest

from repro.apps.rftp.transfer import RftpConfig, RftpTransfer
from repro.faults import FaultInjector, FaultPlan, FaultSpec, RecoveryConfig
from repro.hw import Machine, Nic, NicKind, frontend_lan_host
from repro.net.link import connect
from repro.net.topology import wire_frontend_lan
from repro.sim.context import Context
from repro.util.units import MIB, to_gbps


def pair(seed=61, faults=None):
    ctx = Context.create(seed=seed)
    if faults is not None:
        FaultInjector(ctx, FaultPlan.parse(faults))
    a = Machine(ctx, "a", pcie_sockets=(0,))
    b = Machine(ctx, "b", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    link = connect(na, nb)
    return ctx, a, b, link


METRO_CFG = RftpConfig(block_size=2 * MIB, streams_per_link=2, credits=2)


def metro_pair(seed=70, faults=None):
    """Three 2.5 ms rails: the credit-bound regime where failover shows."""
    ctx = Context.create(seed=seed)
    if faults is not None:
        FaultInjector(ctx, FaultPlan.parse(faults))
    a = frontend_lan_host(ctx, "a")
    b = frontend_lan_host(ctx, "b")
    from repro.net.topology import _nics

    links = [
        connect(c, s, delay=2.5e-3, name=f"metro{i}")
        for i, (c, s) in enumerate(
            zip(_nics(a, NicKind.ROCE_QDR), _nics(b, NicKind.ROCE_QDR))
        )
    ]
    return ctx, a, b, links


def run_metro_rftp(ctx, a, b, duration=30.0, config=METRO_CFG):
    xfer = RftpTransfer(ctx, a, b, source="zero", sink="null", config=config)
    return xfer.run(duration, sample_interval=0.5)


def rate_between(series, t0, t1):
    t = np.asarray(series.times)
    v = np.asarray(series.values)
    mask = (t > t0) & (t <= t1)
    return float(v[mask].mean())


def test_link_fail_and_restore_flags():
    ctx, a, b, link = pair()
    assert not link.failed
    link.fail()
    assert link.failed and link.rate == 0.0
    link.restore()
    assert not link.failed
    assert link.rate == pytest.approx(link._nominal_rate)


def test_degrade_validation():
    ctx, a, b, link = pair()
    with pytest.raises(ValueError):
        link.degrade(0.0)
    with pytest.raises(ValueError):
        link.degrade(1.5)


def test_transfer_stalls_during_outage_and_resumes():
    ctx, a, b, link = pair(seed=62)
    xfer = RftpTransfer(ctx, a, b, source="zero", sink="null",
                        config=RftpConfig(streams_per_link=2))
    xfer.start()

    def chaos():
        yield ctx.sim.timeout(5.0)
        link.fail()
        yield ctx.sim.timeout(5.0)
        link.restore()

    ctx.sim.process(chaos())
    ctx.sim.run(until=5.0)
    ctx.fluid.settle()
    before_outage = xfer.transferred()
    ctx.sim.run(until=10.0)
    ctx.fluid.settle()
    during_outage = xfer.transferred()
    ctx.sim.run(until=15.0)
    ctx.fluid.settle()
    after_restore = xfer.transferred()
    xfer.stop()

    assert during_outage == pytest.approx(before_outage)  # fully stalled
    resumed_rate = (after_restore - during_outage) / 5.0
    assert to_gbps(resumed_rate) > 35  # back at line rate


def test_degraded_link_caps_throughput():
    ctx, a, b, link = pair(seed=63)
    xfer = RftpTransfer(ctx, a, b, source="zero", sink="null",
                        config=RftpConfig(streams_per_link=2))
    xfer.start()
    ctx.sim.run(until=2.0)
    link.degrade(0.25)
    ctx.sim.run(until=2.0 + 8.0)
    ctx.fluid.settle()
    start = xfer.transferred()
    ctx.sim.run(until=ctx.sim.now + 5.0)
    ctx.fluid.settle()
    rate = (xfer.transferred() - start) / 5.0
    xfer.stop()
    assert rate == pytest.approx(0.25 * link._nominal_rate, rel=0.02)


def test_one_failed_link_of_three_drops_aggregate_by_a_third():
    ctx = Context.create(seed=64)
    a = frontend_lan_host(ctx, "a")
    b = frontend_lan_host(ctx, "b")
    links = wire_frontend_lan(a, b)
    xfer = RftpTransfer(ctx, a, b, source="zero", sink="null",
                        config=RftpConfig(streams_per_link=2))
    xfer.start()
    ctx.sim.run(until=5.0)
    ctx.fluid.settle()
    healthy = xfer.transferred() / 5.0
    links[1].fail()
    start = xfer.transferred()
    ctx.sim.run(until=10.0)
    ctx.fluid.settle()
    degraded = (xfer.transferred() - start) / 5.0
    xfer.stop()
    assert degraded == pytest.approx(healthy * 2.0 / 3.0, rel=0.03)


def test_determinism_same_seed_same_result():
    """Two identical runs produce byte-identical outcomes."""
    results = []
    for _ in range(2):
        ctx, a, b, link = pair(seed=65)
        xfer = RftpTransfer(ctx, a, b, source="zero", sink="null",
                            config=RftpConfig(streams_per_link=2))
        res = xfer.run(10.0)
        results.append((res.total_bytes,
                        res.sender_accounting.total_seconds))
    assert results[0] == results[1]


def test_determinism_experiments():
    from repro.core.experiments import exp_fig09_e2e

    r1 = exp_fig09_e2e.run(quick=True, seed=5)
    r2 = exp_fig09_e2e.run(quick=True, seed=5)
    assert [c.measured for c in r1.checks] == [c.measured for c in r2.checks]

# --- Link fault semantics ---------------------------------------------------------


def test_link_fail_is_idempotent():
    ctx, a, b, link = pair(seed=66)
    link.fail()
    link.fail()  # second call must be a no-op, not an error
    assert link.failed and link.rate == 0.0
    link.restore()
    assert not link.failed
    assert link.rate == pytest.approx(link._nominal_rate)


def test_degrade_composes_with_outage():
    """Degradation persists across a fail/restore cycle."""
    ctx, a, b, link = pair(seed=67)
    link.degrade(0.5)
    assert link.rate == pytest.approx(0.5 * link._nominal_rate)
    link.fail()
    assert link.rate == 0.0
    link.restore()
    # the link comes back still degraded, not magically healed
    assert link.rate == pytest.approx(0.5 * link._nominal_rate)
    link.degrade(1.0)
    assert link.rate == pytest.approx(link._nominal_rate)
    # restore() on a healthy link clears any degradation
    link.degrade(0.25)
    link.restore()
    assert link.rate == pytest.approx(link._nominal_rate)


def test_recovery_config_backoff_caps():
    rec = RecoveryConfig(backoff_base=0.1, backoff_factor=2.0, backoff_cap=2.0)
    assert rec.backoff(0) == pytest.approx(0.1)
    assert rec.backoff(3) == pytest.approx(0.8)
    assert rec.backoff(10) == pytest.approx(2.0)  # capped
    with pytest.raises(ValueError):
        RecoveryConfig(detect_timeout=-1.0)
    with pytest.raises(ValueError):
        RecoveryConfig(retransmit_budget=0)
    with pytest.raises(ValueError):
        RecoveryConfig(window_loss_fraction=1.5)


# --- Fault plans: parsing, validation, canonical form -----------------------------


def test_fault_spec_parse_fields_and_aliases():
    spec = FaultSpec.parse("link-down@link:1,at=5,duration=2")
    assert (spec.kind, spec.target) == ("link-down", "link:1")
    assert (spec.at, spec.duration) == (5.0, 2.0)
    assert (spec.category, spec.selector) == ("link", "1")
    # short aliases spell the same spec
    assert FaultSpec.parse("link-down@link:1,t=5,dur=2") == spec
    spec = FaultSpec.parse("loss@link:0,mag=0.3,period=4,n=5,jitter=0.5")
    assert (spec.magnitude, spec.period, spec.count, spec.jitter) == \
        (0.3, 4.0, 5, 0.5)


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec.parse("meteor-strike@link:0")  # unknown kind
    with pytest.raises(ValueError):
        FaultSpec.parse("link-down@volcano:0")  # unknown category
    with pytest.raises(ValueError):
        FaultSpec.parse("link-down@link:0,frobnicate=1")  # unknown field
    with pytest.raises(ValueError):
        FaultSpec.parse("link-down")  # no target at all
    with pytest.raises(ValueError):
        FaultSpec(kind="link-down", target="link:0", count=3)  # no period
    with pytest.raises(ValueError):
        FaultSpec(kind="degrade", target="link:0", magnitude=1.5)
    with pytest.raises(ValueError):
        FaultSpec(kind="loss", target="link:0", magnitude=0.0)
    with pytest.raises(ValueError):
        FaultSpec(kind="link-down", target="link:0", at=-1.0)


def test_fault_plan_parse_and_canonical():
    plan = FaultPlan.parse(
        "link-down@link:1,at=5,duration=2; degrade@link:*,mag=0.5")
    assert len(plan.specs) == 2 and not plan.empty
    # two spellings of the same plan share one canonical form (= cache key)
    other = FaultPlan.parse(
        "link-down@link:1,t=5,dur=2;degrade@link:*,magnitude=0.5")
    assert plan.canonical() == other.canonical()
    assert FaultPlan.parse("").empty
    assert FaultPlan.parse(" ; ").empty
    with pytest.raises(TypeError):
        FaultPlan(("not a spec",))


def test_ambient_plan_env(monkeypatch):
    from repro.faults.plan import REPRO_FAULTS_ENV, ambient_plan, ambient_spec

    monkeypatch.delenv(REPRO_FAULTS_ENV, raising=False)
    assert ambient_plan() is None and ambient_spec() == ""
    monkeypatch.setenv(REPRO_FAULTS_ENV, "  ")
    assert ambient_plan() is None and ambient_spec() == ""
    monkeypatch.setenv(REPRO_FAULTS_ENV, "nic-down@link:2,at=8")
    plan = ambient_plan()
    assert plan is not None and plan.specs[0].kind == "nic-down"
    assert ambient_spec() == plan.canonical()


# --- Injector mechanics -----------------------------------------------------------


def test_injector_attaches_once():
    ctx = Context.create(seed=68)
    FaultInjector(ctx, FaultPlan(()))
    with pytest.raises(RuntimeError):
        FaultInjector(ctx, FaultPlan(()))


def test_unresolved_target_counts():
    ctx, a, b, link = pair(seed=69, faults="link-down@link:9,at=1")
    ctx.sim.run(until=2.0)
    assert ctx.faults.stats.unresolved == 1
    assert ctx.faults.stats.faults_injected == 0
    assert not link.failed


def test_cm_delay_slows_handshake():
    from repro.rdma.cm import ConnectionManager

    ctx, a, b, link = pair(
        seed=71, faults="cm-delay@link:0,at=0,magnitude=0.5,duration=5")
    qp_a, qp_b, hs = ConnectionManager(ctx).connect_pair(
        link.a, link.b, name="qp")
    ctx.sim.run(until=hs)
    assert ctx.sim.now == pytest.approx(3 * link.delay + 0.5)


def test_degrade_fault_window():
    ctx, a, b, link = pair(
        seed=72, faults="degrade@link:0,at=5,magnitude=0.5,duration=5")
    ctx.sim.run(until=6.0)
    assert link.rate == pytest.approx(0.5 * link._nominal_rate)
    ctx.sim.run(until=11.0)
    assert link.rate == pytest.approx(link._nominal_rate)


def test_ssd_degrade_window():
    from repro.storage.ssd import SsdDevice
    from repro.util.units import GB

    ctx = Context.create(seed=73)
    FaultInjector(ctx, FaultPlan.parse(
        "ssd-degrade@ssd:flashy,at=1,magnitude=0.25,duration=2"))
    dev = SsdDevice(ctx, "flashy", 100 * GB)
    ctx.sim.run(until=1.5)
    assert dev.bandwidth.capacity == pytest.approx(0.25 * dev.burst_rate)
    ctx.sim.run(until=4.0)
    assert dev.bandwidth.capacity == pytest.approx(dev.burst_rate)


def test_target_stall_fails_target_links():
    from repro.hw import backend_lan_host
    from repro.net.topology import wire_san
    from repro.storage.target import IserTarget

    ctx = Context.create(seed=74)
    FaultInjector(ctx, FaultPlan.parse(
        "target-stall@target:tgtd,at=1,duration=2"))
    front = frontend_lan_host(ctx, "front", with_ib=True)
    back = backend_lan_host(ctx, "back")
    wire_san(ctx, front, back)
    IserTarget(ctx, back, tuning="numa", n_links=2)
    tgt_links = [ln for ln in ctx.faults.links
                 if ln.a.machine is back or ln.b.machine is back]
    assert tgt_links
    ctx.sim.run(until=2.0)
    assert all(ln.failed for ln in tgt_links)
    ctx.sim.run(until=4.0)
    assert not any(ln.failed for ln in tgt_links)


# --- RFTP recovery under injected faults (metro testbed) --------------------------


def test_short_blip_stalls_without_recovery():
    """An outage shorter than the block-ack timeout is just a stall."""
    ctx, a, b, links = metro_pair(
        seed=75, faults="link-down@link:1,at=10,duration=0.1")
    res = run_metro_rftp(ctx, a, b, duration=20.0)
    assert res.streams_failed == 0
    assert res.reconnects == 0
    assert res.retransmitted_bytes == 0.0
    assert ctx.faults.stats.faults_injected == 1


def test_nic_down_failover_recovers_goodput():
    """Survivors absorb the dead rail's credit budget: goodput returns."""
    ctx, a, b, links = metro_pair(seed=76, faults="nic-down@link:1,at=10")
    res = run_metro_rftp(ctx, a, b, duration=30.0)
    pre = rate_between(res.series, 2.0, 10.0)
    post = rate_between(res.series, 20.0, 30.0)
    assert to_gbps(pre) > 35  # credit-bound aggregate, all three rails
    assert post >= 0.9 * pre  # failover recovered the goodput
    assert res.streams_failed == 2  # both streams of the dead rail
    # each dead stream retransmits its full credit window
    assert res.retransmitted_bytes == pytest.approx(2 * 2 * 2 * MIB)
    assert res.reconnects == 0  # the NIC never comes back
    assert ctx.faults.stats.giveups == 1


def test_link_flap_reconnects():
    """A transient outage: failover first, CM reconnect once it returns."""
    ctx, a, b, links = metro_pair(
        seed=77, faults="link-down@link:1,at=10,duration=3")
    res = run_metro_rftp(ctx, a, b, duration=30.0)
    pre = rate_between(res.series, 2.0, 10.0)
    post = rate_between(res.series, 20.0, 30.0)
    assert res.reconnects == 1
    assert res.streams_failed == 2
    # outage (3 s) + capped exponential backoff overshoot
    assert 2.5 < res.recovery_seconds < 4.5
    assert post >= 0.9 * pre
    assert not links[1].failed


def test_qp_error_triggers_immediate_reconnect():
    """A QP async error skips detection: tear down and reconnect now."""
    ctx, a, b, links = metro_pair(seed=78, faults="qp-error@link:1,at=10")
    res = run_metro_rftp(ctx, a, b, duration=20.0)
    assert res.reconnects == 1
    assert res.streams_failed == 2
    assert 0.0 < res.recovery_seconds < 1.0  # link was never down
    assert res.retransmitted_bytes == pytest.approx(2 * 2 * 2 * MIB)


def test_crash_kills_and_restarts_all_rails():
    ctx, a, b, links = metro_pair(
        seed=79, faults="crash@transfer:rftp,at=10,duration=1")
    res = run_metro_rftp(ctx, a, b, duration=30.0)
    pre = rate_between(res.series, 2.0, 10.0)
    post = rate_between(res.series, 20.0, 30.0)
    assert res.streams_failed == 6  # every stream of every rail
    assert res.reconnects == 3  # every rail re-established
    assert post >= 0.9 * pre


def test_loss_burst_charges_retransmission():
    ctx, a, b, links = metro_pair(
        seed=80, faults="loss@link:0,at=10,magnitude=0.5")
    res = run_metro_rftp(ctx, a, b, duration=20.0)
    # half the credit window of each of the link's two streams is resent
    assert res.retransmitted_bytes == pytest.approx(2 * 0.5 * 2 * 2 * MIB)
    assert res.streams_failed == 0  # the streams survive a loss burst
    assert res.reconnects == 0


# --- Differential guarantees ------------------------------------------------------


def _reference_run(attach_empty_injector: bool):
    ctx = Context.create(seed=81)
    if attach_empty_injector:
        FaultInjector(ctx, FaultPlan(()))
    a = frontend_lan_host(ctx, "a")
    b = frontend_lan_host(ctx, "b")
    wire_frontend_lan(a, b)
    xfer = RftpTransfer(ctx, a, b, source="zero", sink="null",
                        config=RftpConfig(streams_per_link=2))
    res = xfer.run(10.0)
    return (
        res.total_bytes,
        tuple(sorted(res.sender_accounting.seconds_by_category().items())),
        tuple(sorted(res.receiver_accounting.seconds_by_category().items())),
        tuple(res.series.times),
        tuple(res.series.values),
    )


def test_empty_plan_is_byte_identical():
    """An empty-plan injector is indistinguishable from no injector."""
    assert _reference_run(False) == _reference_run(True)


def test_jittered_plan_is_deterministic_per_seed():
    def once():
        ctx, a, b, links = metro_pair(
            seed=82,
            faults="loss@link:0,at=5,magnitude=0.3,period=4,count=3,jitter=0.5")
        res = run_metro_rftp(ctx, a, b, duration=20.0)
        return (res.total_bytes, res.retransmitted_bytes,
                tuple(res.series.values))

    first, second = once(), once()
    assert first == second
    assert first[1] > 0.0  # the jittered bursts really fired


# --- rkey registry scoping & cache identity ---------------------------------------


def test_rkey_registry_scoped_per_context():
    from repro.kernel import NumaPolicy, place_region
    from repro.rdma import ConnectionManager, ProtectionDomain

    c1 = Context.create(seed=83)
    m1 = Machine(c1, "a", pcie_sockets=(0,))
    pd = ProtectionDomain(m1)
    mr = pd.register(place_region(MIB, NumaPolicy.bind(0), m1.n_nodes))
    ConnectionManager.register_pd(pd)
    assert ConnectionManager.lookup_rkey(m1, mr.rkey) is mr
    # a fresh context's machine sees none of c1's registrations
    c2 = Context.create(seed=84)
    m2 = Machine(c2, "a", pcie_sockets=(0,))
    assert not c2.rkeys
    with pytest.raises(PermissionError):
        ConnectionManager.lookup_rkey(m2, mr.rkey)


def test_cache_identity_includes_fault_plan(monkeypatch):
    from repro.exec import SimTask
    from repro.faults.plan import REPRO_FAULTS_ENV

    task = SimTask("repro.core.reportgen:run_whole_experiment",
                   {"registry": "figures", "name": "fig09", "quick": True})
    monkeypatch.delenv(REPRO_FAULTS_ENV, raising=False)
    base = task.identity()
    # unset and empty-string plans key identically (both fault-free)
    monkeypatch.setenv(REPRO_FAULTS_ENV, "")
    assert task.identity() == base
    # a real plan changes the identity; its spelling does not
    monkeypatch.setenv(REPRO_FAULTS_ENV, "link-down@link:1,at=5")
    faulted = task.identity()
    assert faulted != base
    monkeypatch.setenv(REPRO_FAULTS_ENV, "link-down@link:1,t=5")
    assert task.identity() == faulted
