"""Fault injection: link failures/degradation and system behaviour."""

import pytest

from repro.apps.rftp.transfer import RftpConfig, RftpTransfer
from repro.hw import Machine, Nic, NicKind, frontend_lan_host
from repro.net.link import connect
from repro.net.topology import wire_frontend_lan
from repro.sim.context import Context
from repro.util.units import to_gbps


def pair(seed=61):
    ctx = Context.create(seed=seed)
    a = Machine(ctx, "a", pcie_sockets=(0,))
    b = Machine(ctx, "b", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    link = connect(na, nb)
    return ctx, a, b, link


def test_link_fail_and_restore_flags():
    ctx, a, b, link = pair()
    assert not link.failed
    link.fail()
    assert link.failed and link.rate == 0.0
    link.restore()
    assert not link.failed
    assert link.rate == pytest.approx(link._nominal_rate)


def test_degrade_validation():
    ctx, a, b, link = pair()
    with pytest.raises(ValueError):
        link.degrade(0.0)
    with pytest.raises(ValueError):
        link.degrade(1.5)


def test_transfer_stalls_during_outage_and_resumes():
    ctx, a, b, link = pair(seed=62)
    xfer = RftpTransfer(ctx, a, b, source="zero", sink="null",
                        config=RftpConfig(streams_per_link=2))
    xfer.start()

    def chaos():
        yield ctx.sim.timeout(5.0)
        link.fail()
        yield ctx.sim.timeout(5.0)
        link.restore()

    ctx.sim.process(chaos())
    ctx.sim.run(until=5.0)
    ctx.fluid.settle()
    before_outage = xfer.transferred()
    ctx.sim.run(until=10.0)
    ctx.fluid.settle()
    during_outage = xfer.transferred()
    ctx.sim.run(until=15.0)
    ctx.fluid.settle()
    after_restore = xfer.transferred()
    xfer.stop()

    assert during_outage == pytest.approx(before_outage)  # fully stalled
    resumed_rate = (after_restore - during_outage) / 5.0
    assert to_gbps(resumed_rate) > 35  # back at line rate


def test_degraded_link_caps_throughput():
    ctx, a, b, link = pair(seed=63)
    xfer = RftpTransfer(ctx, a, b, source="zero", sink="null",
                        config=RftpConfig(streams_per_link=2))
    xfer.start()
    ctx.sim.run(until=2.0)
    link.degrade(0.25)
    ctx.sim.run(until=2.0 + 8.0)
    ctx.fluid.settle()
    start = xfer.transferred()
    ctx.sim.run(until=ctx.sim.now + 5.0)
    ctx.fluid.settle()
    rate = (xfer.transferred() - start) / 5.0
    xfer.stop()
    assert rate == pytest.approx(0.25 * link._nominal_rate, rel=0.02)


def test_one_failed_link_of_three_drops_aggregate_by_a_third():
    ctx = Context.create(seed=64)
    a = frontend_lan_host(ctx, "a")
    b = frontend_lan_host(ctx, "b")
    links = wire_frontend_lan(a, b)
    xfer = RftpTransfer(ctx, a, b, source="zero", sink="null",
                        config=RftpConfig(streams_per_link=2))
    xfer.start()
    ctx.sim.run(until=5.0)
    ctx.fluid.settle()
    healthy = xfer.transferred() / 5.0
    links[1].fail()
    start = xfer.transferred()
    ctx.sim.run(until=10.0)
    ctx.fluid.settle()
    degraded = (xfer.transferred() - start) / 5.0
    xfer.stop()
    assert degraded == pytest.approx(healthy * 2.0 / 3.0, rel=0.03)


def test_determinism_same_seed_same_result():
    """Two identical runs produce byte-identical outcomes."""
    results = []
    for _ in range(2):
        ctx, a, b, link = pair(seed=65)
        xfer = RftpTransfer(ctx, a, b, source="zero", sink="null",
                            config=RftpConfig(streams_per_link=2))
        res = xfer.run(10.0)
        results.append((res.total_bytes,
                        res.sender_accounting.total_seconds))
    assert results[0] == results[1]


def test_determinism_experiments():
    from repro.core.experiments import exp_fig09_e2e

    r1 = exp_fig09_e2e.run(quick=True, seed=5)
    r2 = exp_fig09_e2e.run(quick=True, seed=5)
    assert [c.measured for c in r1.checks] == [c.measured for c in r2.checks]
