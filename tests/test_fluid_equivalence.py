"""Differential suite: the array solver must reproduce the reference.

Each scenario is a randomized (seeded) churn script — flows arriving
and departing over shared resources, rate caps, capacity shocks,
open-ended flows stopped mid-flight, zero-capacity and duplicated path
entries — executed twice, once per solver backend, on independent
simulators.  The two executions must agree on every observable:

* per-flow transferred bytes and completion times (1e-6 relative);
* per-category charge totals (1e-6 relative);
* which flows completed at all;
* :class:`FluidStats` counters (exactly equal, and monotone over time).

Scenario sizes straddle ``_VECTOR_MIN_FLOWS`` so both the scalar
dispatch (small components) and the vectorized kernel (large
components) are exercised; the scenario count (~200) is the churn
coverage promised in ISSUE 3.
"""

import math
import random

import pytest

from repro.kernel.accounting import CpuAccounting
from repro.sim import FluidFlow, FluidResource, FluidScheduler, Simulator
from repro.sim.fluid import _VECTOR_MIN_FLOWS, FluidStats

N_SCENARIOS = 200


def _random_scenario(rng: random.Random) -> dict:
    """One churn script: resources, flow specs, capacity shocks."""
    # Half the scenarios stay small (scalar dispatch), half go wide
    # enough that whole-graph allocations clear _VECTOR_MIN_FLOWS.
    if rng.random() < 0.5:
        n_res = rng.randint(1, 4)
        n_flows = rng.randint(1, 10)
    else:
        n_res = rng.randint(4, 12)
        n_flows = rng.randint(_VECTOR_MIN_FLOWS, 3 * _VECTOR_MIN_FLOWS)
    capacities = []
    for _ in range(n_res):
        roll = rng.random()
        if roll < 0.08:
            capacities.append(0.0)  # zero-capacity resource
        elif roll < 0.16:
            capacities.append(math.inf)
        else:
            capacities.append(rng.uniform(20.0, 800.0))
    flows = []
    for _ in range(n_flows):
        start = rng.uniform(0.0, 30.0)
        if rng.random() < 0.75:
            size, stop_after = rng.uniform(10.0, 2000.0), None
        else:
            size, stop_after = None, rng.uniform(0.5, 20.0)
        n_path = rng.randint(1, min(4, n_res))
        path = []
        for r in rng.sample(range(n_res), n_path):
            path.append((r, rng.uniform(0.5, 2.0)))
        if path and rng.random() < 0.2:
            path.append(path[0])  # duplicated path entry (weights merge)
        cap = rng.uniform(2.0, 300.0) if rng.random() < 0.35 else None
        if cap is None and not any(
            math.isfinite(capacities[i]) for i, _ in path
        ):
            cap = rng.uniform(2.0, 300.0)  # keep the flow bounded
        charge = (rng.choice(("usr_proto", "copy", "irq")),
                  rng.uniform(0.0, 1e-3))
        flows.append((start, size, stop_after, path, cap, charge))
    shocks = [
        (rng.uniform(1.0, 25.0), rng.randrange(n_res),
         rng.choice([0.0, rng.uniform(10.0, 900.0)]))
        for _ in range(rng.randint(0, 4))
    ] if n_res else []
    return {"capacities": capacities, "flows": flows, "shocks": shocks}


def _execute(scenario: dict, solver: str) -> dict:
    """Run one scenario under one backend; return its observables."""
    sim = Simulator()
    sched = FluidScheduler(sim, solver=solver)
    resources = [FluidResource(sched, c, f"r{i}")
                 for i, c in enumerate(scenario["capacities"])]
    ledger = CpuAccounting("equiv")

    def starter(delay, flow, stop_after):
        yield sim.timeout(delay)
        sched.start(flow)
        if stop_after is not None:
            yield sim.timeout(stop_after)
            if flow._active:
                sched.stop(flow)

    flows = []
    for i, (start, size, stop_after, path_idx, cap, charge) in enumerate(
            scenario["flows"]):
        path = [(resources[j], w) for j, w in path_idx]
        cat, per_byte = charge
        flow = FluidFlow(path, size=size, cap=cap,
                         charges=[(ledger.account(cat), per_byte)],
                         name=f"f{i}")
        flows.append(flow)
        sim.process(starter(start, flow, stop_after))

    def shocker(when, idx, new_cap):
        yield sim.timeout(when)
        resources[idx].set_capacity(new_cap)

    for when, idx, new_cap in scenario["shocks"]:
        sim.process(shocker(when, idx, new_cap))

    counters_trace = []

    def sampler():
        while True:
            yield sim.timeout(7.0)
            counters_trace.append(sched.stats.as_dict())

    sim.process(sampler())
    sim.run(until=90.0)
    sched.settle()
    for f in flows:
        if f._active:
            sched.stop(f)
    return {
        "transferred": [f.transferred for f in flows],
        "finished_at": [f.finished_at for f in flows],
        "completed": [f.done is not None and f.done.triggered for f in flows],
        "charges": ledger.seconds_by_category(),
        "stats": sched.stats.as_dict(),
        "stats_trace": counters_trace,
    }


def _close(a, b, rel=1e-6):
    if a is None or b is None:
        return a is b
    return abs(a - b) <= rel * max(1.0, abs(a), abs(b))


@pytest.mark.parametrize("seed", range(N_SCENARIOS))
def test_solvers_agree(seed):
    scenario = _random_scenario(random.Random(900_000 + seed))
    ref = _execute(scenario, "python")
    arr = _execute(scenario, "array")

    for i, (a, b) in enumerate(zip(ref["transferred"], arr["transferred"])):
        assert _close(a, b), (
            f"seed {seed} flow {i}: transferred python={a!r} array={b!r}"
        )
    for i, (a, b) in enumerate(zip(ref["finished_at"], arr["finished_at"])):
        assert _close(a, b), (
            f"seed {seed} flow {i}: finished_at python={a!r} array={b!r}"
        )
    assert ref["completed"] == arr["completed"]

    assert set(ref["charges"]) == set(arr["charges"])
    for cat, total in ref["charges"].items():
        assert _close(total, arr["charges"][cat]), (
            f"seed {seed} charge {cat}: python={total!r} "
            f"array={arr['charges'][cat]!r}"
        )

    # Counters: identical across backends (same rebalance cadence) ...
    assert ref["stats"] == arr["stats"], f"seed {seed}: stats diverged"
    # ... and monotone over simulated time within each backend.
    for trace in (ref["stats_trace"], arr["stats_trace"]):
        for earlier, later in zip(trace, trace[1:]):
            for key, value in earlier.items():
                assert later[key] >= value, f"seed {seed}: {key} decreased"


def test_process_totals_accumulate():
    """Class-level totals advance in step with instance counters."""
    before = FluidStats.process_totals()
    scenario = _random_scenario(random.Random(123456))
    result = _execute(scenario, "array")
    after = FluidStats.process_totals()
    assert after["rebalances"] - before["rebalances"] >= (
        result["stats"]["rebalances"]
    )
    assert all(after[k] >= before[k] for k in after)
