"""Tests for getrusage and the host monitor."""

import pytest

from repro.apps.iperf import run_iperf
from repro.hw import Machine, frontend_lan_host
from repro.kernel import SimProcess
from repro.kernel.monitor import HostMonitor, Rusage, getrusage
from repro.net.topology import wire_frontend_lan
from repro.sim.context import Context
from repro.sim.fluid import FluidFlow


def test_getrusage_thread_split():
    ctx = Context.create()
    m = Machine(ctx, "m")
    t = SimProcess(m, "p").spawn_thread()
    t.accounting.add("usr_proto", 2.0)
    t.accounting.add("copy", 3.0)
    ru = getrusage(t)
    assert ru == Rusage(ru_utime=2.0, ru_stime=3.0)
    assert ru.total == 5.0


def test_getrusage_process_merges_threads():
    ctx = Context.create()
    m = Machine(ctx, "m")
    p = SimProcess(m, "p")
    t1, t2 = p.spawn_thread(), p.spawn_thread()
    t1.accounting.add("load", 1.0)
    t2.accounting.add("sys_proto", 2.0)
    ru = getrusage(p)
    assert ru.ru_utime == pytest.approx(1.0)
    assert ru.ru_stime == pytest.approx(2.0)


def test_host_monitor_tracks_utilization():
    ctx = Context.create(seed=1)
    m = Machine(ctx, "m")
    monitor = HostMonitor(m, interval=0.5)
    # saturate node 0's memory with a raw fluid flow
    flow = FluidFlow([(m.mem_bank(0).bandwidth, 1.0)], size=None, name="burn")
    ctx.fluid.start(flow)
    ctx.sim.run(until=5.0)
    ctx.fluid.settle()
    assert len(monitor.cpu[0]) >= 9
    assert monitor.mem[0].mean() == pytest.approx(1.0, abs=0.01)
    assert monitor.mem[1].mean() == pytest.approx(0.0, abs=0.01)
    assert monitor.hottest_resource() == "mem0"
    ctx.fluid.stop(flow)
    monitor.stop()


def test_host_monitor_identifies_iperf_bottleneck():
    """The tuned iperf run is memory-bound, and the monitor sees it."""
    ctx = Context.create(seed=2)
    a = frontend_lan_host(ctx, "a")
    b = frontend_lan_host(ctx, "b")
    wire_frontend_lan(a, b)
    monitor = HostMonitor(a, interval=1.0)
    run_iperf(ctx, a, b, duration=10.0, numa_tuned=True)
    hottest = monitor.hottest_resource()
    assert hottest.startswith("mem")
    # memory nearly saturated, CPU clearly not
    assert monitor.mem[0].max() > 0.95
    assert max(s.max() for s in monitor.cpu.values()) < 0.9
    monitor.stop()
