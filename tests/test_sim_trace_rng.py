"""Tests for tracing, probes, and the RNG registry."""

import pytest

from repro.sim import (
    FluidFlow,
    FluidResource,
    FluidScheduler,
    RngRegistry,
    Simulator,
    ThroughputProbe,
    TimeSeries,
    TraceLog,
)


# --- TimeSeries ---------------------------------------------------------------


def test_timeseries_record_and_stats():
    ts = TimeSeries("x")
    for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]:
        ts.record(t, v)
    assert len(ts) == 3
    assert ts.mean() == pytest.approx(3.0)
    assert ts.max() == 5.0
    assert ts.min() == 1.0


def test_timeseries_rejects_backwards_time():
    ts = TimeSeries("x")
    ts.record(1.0, 0.0)
    with pytest.raises(ValueError):
        ts.record(0.5, 0.0)


def test_timeseries_steady_mean_skips_rampup():
    ts = TimeSeries("x")
    values = [0.0, 0.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0]
    for i, v in enumerate(values):
        ts.record(float(i), v)
    assert ts.steady_mean(skip_fraction=0.2) == pytest.approx(10.0)
    assert ts.mean() < 10.0


def test_timeseries_empty_stats():
    ts = TimeSeries()
    assert ts.mean() == 0.0
    assert ts.steady_mean() == 0.0


# --- ThroughputProbe -----------------------------------------------------------


def test_probe_measures_flow_rate():
    sim = Simulator()
    sched = FluidScheduler(sim)
    link = FluidResource(sched, 100.0, "link")
    flow = FluidFlow([(link, 1.0)], size=None, name="open")
    sched.start(flow)
    probe = ThroughputProbe(
        sim,
        counter=lambda: flow.transferred,
        interval=1.0,
        pre_sample=sched.settle,
    )
    sim.run(until=10.0)
    series = probe.stop()
    assert len(series) == 10
    assert series.mean() == pytest.approx(100.0)
    sched.stop(flow)


def test_probe_sees_rate_change():
    sim = Simulator()
    sched = FluidScheduler(sim)
    link = FluidResource(sched, 100.0, "link")
    flow = FluidFlow([(link, 1.0)], size=None, name="open")
    sched.start(flow)

    def throttle():
        yield sim.timeout(5.0)
        link.set_capacity(50.0)

    sim.process(throttle())
    probe = ThroughputProbe(
        sim, counter=lambda: flow.transferred, interval=1.0, pre_sample=sched.settle
    )
    sim.run(until=10.0)
    series = probe.stop()
    assert series.values[0] == pytest.approx(100.0)
    assert series.values[-1] == pytest.approx(50.0)


# --- TraceLog ---------------------------------------------------------------------


def test_tracelog_filtering():
    sim = Simulator()
    log = TraceLog(sim)
    log.emit("io", "read", lba=0)
    log.emit("net", "send")
    log.emit("io", "write", lba=8)
    assert len(log) == 3
    assert log.messages("io") == ["read", "write"]
    assert log.filter("net")[0].time == 0.0


def test_tracelog_disabled():
    sim = Simulator()
    log = TraceLog(sim, enabled=False)
    log.emit("io", "read")
    assert len(log) == 0


# --- RngRegistry -------------------------------------------------------------------


def test_rng_streams_reproducible():
    a = RngRegistry(seed=7).stream("tcp").random(5)
    b = RngRegistry(seed=7).stream("tcp").random(5)
    assert (a == b).all()


def test_rng_streams_independent_of_creation_order():
    r1 = RngRegistry(seed=7)
    _ = r1.stream("other").random(100)
    x1 = r1.stream("tcp").random(5)
    r2 = RngRegistry(seed=7)
    x2 = r2.stream("tcp").random(5)
    assert (x1 == x2).all()


def test_rng_different_names_differ():
    reg = RngRegistry(seed=7)
    a = reg.stream("a").random(5)
    b = reg.stream("b").random(5)
    assert not (a == b).all()


def test_rng_stream_cached():
    reg = RngRegistry(seed=7)
    assert reg.stream("a") is reg.stream("a")


def test_rng_fork_differs():
    reg = RngRegistry(seed=7)
    f = reg.fork(1)
    assert f.seed != reg.seed
    a = reg.stream("x").random(3)
    b = f.stream("x").random(3)
    assert not (a == b).all()


def test_rng_validation():
    with pytest.raises(ValueError):
        RngRegistry(seed=-1)
    with pytest.raises(ValueError):
        RngRegistry().stream("")
