"""Broker admission, scheduling, sessions, cancellation, fault recovery."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.service import (BrokerConfig, RailFleet, TransferBroker,
                           WorkloadConfig)
from repro.sim.context import Context
from repro.util.units import GIB, MIB


def _broker(seed=0, faults="", **cfg):
    ctx = Context.create(seed=seed)
    if faults:
        FaultInjector(ctx, FaultPlan.parse(faults))
    fleet = RailFleet(ctx, n_hosts=1)
    return ctx, fleet, TransferBroker(ctx, fleet, BrokerConfig(**cfg))


def test_jobs_run_and_complete():
    ctx, fleet, broker = _broker()
    jid = broker.submit("t0", 512 * MIB, touch_node=0)
    assert broker.session(jid)["state"] == "running"
    ctx.sim.run(until=5.0)
    s = broker.session(jid)
    assert s["state"] == "completed"
    assert s["transferred"] == pytest.approx(512 * MIB)
    assert broker.stats.completed == 1
    assert broker.sessions() == []  # nothing live


def test_over_quota_job_queues_rather_than_sheds():
    ctx, fleet, broker = _broker(tenant_quota=2, budget_fraction=10.0)
    jids = [broker.submit("hog", 1 * GIB) for _ in range(3)]
    states = [broker.session(j)["state"] for j in jids]
    assert states == ["running", "running", "queued"]
    assert broker.stats.shed == 0
    # an under-quota tenant is not head-of-line blocked by the hog
    other = broker.submit("small", 64 * MIB)
    assert broker.session(other)["state"] == "running"
    # once a hog job finishes, the queued one is admitted
    ctx.sim.run(until=10.0)
    assert broker.session(jids[2])["state"] == "completed"


def test_full_queue_sheds_the_newcomer():
    ctx, fleet, broker = _broker(tenant_quota=1, max_queue=1)
    j1 = broker.submit("t0", 1 * GIB)
    j2 = broker.submit("t0", 1 * GIB)
    j3 = broker.submit("t0", 1 * GIB)
    assert broker.session(j1)["state"] == "running"
    assert broker.session(j2)["state"] == "queued"
    assert j3 is None
    assert broker.stats.shed == 1
    assert broker.tenants["t0"]["shed"] == 1
    # shed is terminal: accounting conserves without it ever running
    ctx.sim.run(until=10.0)
    assert broker.stats.completed == 2


def test_bandwidth_budget_bounds_concurrency():
    # budget = 0.35 x 3 rails ~= 1 nominal rail -> exactly one job runs
    ctx, fleet, broker = _broker(budget_fraction=0.35, tenant_quota=8)
    j1 = broker.submit("a", 1 * GIB)
    j2 = broker.submit("b", 1 * GIB)
    assert broker.session(j1)["state"] == "running"
    assert broker.session(j2)["state"] == "queued"
    assert broker.running == 1


def test_cancel_running_job_reclaims_credits():
    ctx, fleet, broker = _broker(budget_fraction=0.35)
    j1 = broker.submit("a", 10 * GIB)
    j2 = broker.submit("b", 64 * MIB)
    ctx.sim.run(until=0.5)
    assert broker.session(j2)["state"] == "queued"
    assert broker.cancel(j1) is True
    s1 = broker.session(j1)
    assert s1["state"] == "cancelled"
    assert 0 < s1["transferred"] < 10 * GIB  # partial bytes retained
    # the reclaimed budget admits the queued job immediately
    assert broker.session(j2)["state"] == "running"
    ctx.sim.run(until=5.0)
    assert broker.session(j2)["state"] == "completed"
    assert broker.stats.cancelled == 1
    # cancelling a terminal job is a no-op
    assert broker.cancel(j1) is False


def test_cancel_queued_job():
    ctx, fleet, broker = _broker(budget_fraction=0.35)
    broker.submit("a", 1 * GIB)
    j2 = broker.submit("b", 1 * GIB)
    assert broker.cancel(j2) is True
    assert broker.session(j2)["state"] == "cancelled"
    assert broker.queued == 0


def test_sessions_lists_live_jobs_with_tenant_filter():
    ctx, fleet, broker = _broker(budget_fraction=10.0)
    broker.submit("a", 1 * GIB, touch_node=1)
    broker.submit("b", 1 * GIB)
    live = broker.sessions()
    assert [s["tenant"] for s in live] == ["a", "b"]
    assert all(s["state"] == "running" for s in live)
    only_a = broker.sessions(tenant="a")
    assert len(only_a) == 1 and only_a[0]["tenant"] == "a"
    with pytest.raises(KeyError):
        broker.session(999)


def test_numa_aware_binds_buffer_to_rail_node():
    ctx, fleet, broker = _broker(policy="numa-aware")
    for _ in range(3):
        broker.submit("t", 256 * MIB, touch_node=1)
    assert broker.stats.remote_placements == 0
    for s in broker.sessions():
        assert s["buffer_node"] is not None
        assert s["buffer_node"] == fleet.rails[s["rail"]].node


def test_numa_blind_pays_remote_placements():
    ctx, fleet, broker = _broker(policy="numa-blind")
    # rails 0,1 hang off node 0; a node-1 buffer on them is remote
    for _ in range(3):
        broker.submit("t", 256 * MIB, touch_node=1)
    assert broker.stats.remote_placements == 2


def test_rail_failure_reschedules_jobs():
    ctx, fleet, broker = _broker(faults="link-down@link:0,at=1.0")
    jids = [broker.submit("t", 8 * GIB) for _ in range(3)]
    placed = {broker.session(j)["rail"] for j in jids}
    assert placed == {0, 1, 2}  # least-loaded spreads one per rail
    ctx.sim.run(until=30.0)
    assert not fleet.rails[0].alive
    assert broker.stats.rescheduled == 1
    for j in jids:
        s = broker.session(j)
        assert s["state"] == "completed"
        assert s["transferred"] == pytest.approx(8 * GIB)
    moved = [broker.session(j) for j in jids
             if broker.session(j)["reschedules"]]
    assert len(moved) == 1
    assert moved[0]["rail"] is None  # released on completion


def test_link_restore_revives_rail():
    ctx, fleet, broker = _broker(
        faults="link-down@link:0,at=1.0,duration=2.0")
    ctx.sim.run(until=2.0)
    assert not fleet.rails[0].alive
    ctx.sim.run(until=5.0)
    assert fleet.rails[0].alive
    # new work lands on the revived rail again (least-loaded tie -> 0)
    jid = broker.submit("t", 64 * MIB)
    assert broker.session(jid)["rail"] == 0


def test_same_seed_brokered_runs_are_identical():
    def _run():
        ctx = Context.create(seed=11)
        fleet = RailFleet(ctx, n_hosts=1)
        broker = TransferBroker(ctx, fleet, BrokerConfig(),
                                workload=WorkloadConfig(rate=30.0,
                                                        size_mean=64 * MIB))
        broker.serve()
        ctx.sim.run(until=10.0)
        broker.drain()
        ctx.sim.run(until=20.0)
        return broker.summary()

    assert _run() == _run()


def test_idle_broker_leaves_existing_runs_byte_identical():
    """A constructed-but-unserved broker must not perturb other traffic.

    This is the differential guard for wiring the service layer into
    shared contexts: fleet construction registers links and resources
    but schedules nothing and draws no RNG, so an existing transfer's
    results stay byte-identical with the broker present.
    """
    from repro.apps.rftp.transfer import RftpConfig, RftpTransfer
    from repro.hw.nic import NicKind
    from repro.hw.presets import frontend_lan_host
    from repro.net.link import connect
    from repro.net.topology import _nics

    def _run(with_idle_broker):
        ctx = Context.create(seed=5)
        if with_idle_broker:
            fleet = RailFleet(ctx, n_hosts=1)
            broker = TransferBroker(
                ctx, fleet, BrokerConfig(),
                workload=WorkloadConfig())  # constructed, never served
        a = frontend_lan_host(ctx, "xfer-a")
        b = frontend_lan_host(ctx, "xfer-b")
        for c, s in zip(_nics(a, NicKind.ROCE_QDR), _nics(b, NicKind.ROCE_QDR)):
            connect(c, s, delay=83e-6)
        xfer = RftpTransfer(ctx, a, b, source="zero", sink="null",
                            config=RftpConfig())
        res = xfer.run(10.0, sample_interval=1.0)
        return (res.goodput_gbps, list(res.series.times),
                list(res.series.values))

    assert _run(False) == _run(True)
