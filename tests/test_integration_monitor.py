"""Integration: scale behaviour and bottleneck identification."""

import time

import pytest

from repro.core.system import EndToEndSystem
from repro.core.tuning import TuningPolicy
from repro.kernel.monitor import HostMonitor
from repro.net.link import Switch, connect
from repro.hw import Machine, Nic, NicKind
from repro.sim.context import Context
from repro.sim.fluid import FluidFlow
from repro.util.units import GB


def test_monitor_identifies_backend_bottleneck():
    """During an end-to-end RFTP run, the *target* host's PCIe/memory is
    busier than the front-end hosts' CPUs — the SAN write path is the
    narrowest stage (§4.3)."""
    system = EndToEndSystem.lan_testbed(TuningPolicy.numa_bound(), seed=71,
                                        lun_size=2 * GB)
    mon_front = HostMonitor(system.host_a, interval=1.0)
    mon_target = HostMonitor(system.target_b, interval=1.0)
    system.run_rftp_transfer(duration=10.0)
    # front-end CPUs are mostly idle (zero-copy protocol)
    assert max(s.mean() for s in mon_front.cpu.values()) < 0.5
    # the sink target is moving every byte through its banks
    assert max(s.mean() for s in mon_target.mem.values()) > 0.3
    mon_front.stop()
    mon_target.stop()


def test_simulation_wall_time_stays_small():
    """25 simulated minutes of the full testbed in seconds of wall time.

    This is the fluid engine's core engineering claim; regressions here
    make the benchmark harness unusable."""
    t0 = time.perf_counter()
    system = EndToEndSystem.lan_testbed(TuningPolicy.numa_bound(), seed=72,
                                        lun_size=2 * GB)
    res = system.run_rftp_transfer(duration=1500.0)
    wall = time.perf_counter() - t0
    assert res.goodput_gbps > 80
    assert wall < 30.0  # generous bound; typically < 1 s


def test_switch_backplane_oversubscription():
    """A constrained backplane caps the sum of its links' traffic."""
    ctx = Context.create(seed=73)
    a = Machine(ctx, "a", pcie_sockets=(0, 1))
    b = Machine(ctx, "b", pcie_sockets=(0, 1))
    links = []
    for i in range(2):
        na = Nic(a, a.pcie_slots[i], NicKind.ROCE_QDR)
        nb = Nic(b, b.pcie_slots[i], NicKind.ROCE_QDR)
        links.append(connect(na, nb))
    # backplane only fits 1.2x one link
    switch = Switch(ctx, "sw", backplane=1.2 * links[0].rate)
    flows = []
    for link in links:
        switch.attach(link)
        path = [(link.direction(link.a), 1.0)] + switch.extra_path()
        flow = FluidFlow(path, size=None, name=f"f-{link.name}")
        ctx.fluid.start(flow)
        flows.append(flow)
    ctx.sim.run(until=5.0)
    ctx.fluid.settle()
    total = sum(f.transferred for f in flows) / 5.0
    assert total == pytest.approx(switch.backplane.capacity, rel=1e-6)
    # fair split across the two links
    assert flows[0].transferred == pytest.approx(flows[1].transferred,
                                                 rel=1e-6)
    for f in flows:
        ctx.fluid.stop(f)


def test_full_mode_ledger_generates():
    """REPRO_FULL-equivalent: the whole paper-scale ledger in one call."""
    from repro.core.reportgen import generate_experiments_md

    text = generate_experiments_md(quick=False, seed=1)
    line = next(ln for ln in text.splitlines() if "Scorecard" in ln)
    ok, total = line.split("Scorecard:")[1].split()[0].split("/")
    assert ok == total
