"""Tests for buffer pools, SGLs and integrity digests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datapath import (
    BufferPool,
    ScatterGatherList,
    StreamingDigest,
    checksum,
    verify_equal,
)


# --- BufferPool --------------------------------------------------------------------


def test_pool_acquire_release_cycle():
    pool = BufferPool(n_buffers=2, buffer_size=64)
    a = pool.acquire()
    pool.acquire()
    assert pool.acquire() is None  # exhausted
    a.release()
    c = pool.acquire()
    assert c is not None
    assert pool.in_use == 2


def test_pool_views_are_zero_copy():
    pool = BufferPool(4, 64)
    buf = pool.acquire()
    buf.view[:] = 7
    # the arena itself holds the bytes (no copy was made)
    assert (pool.arena[buf.index * 64 : (buf.index + 1) * 64] == 7).all()
    assert buf.view.base is not None  # a view, not an owning array


def test_pool_use_after_free_detected():
    pool = BufferPool(2, 64)
    buf = pool.acquire()
    buf.release()
    with pytest.raises(RuntimeError, match="use-after-free"):
        _ = buf.view


def test_pool_double_free_detected():
    pool = BufferPool(2, 64)
    buf = pool.acquire()
    buf.release()
    with pytest.raises(RuntimeError, match="double free"):
        buf.release()


def test_pool_fill_bounds():
    pool = BufferPool(1, 16)
    buf = pool.acquire()
    buf.fill(np.ones(8, dtype=np.uint8))
    assert (buf.view[:8] == 1).all()
    with pytest.raises(ValueError):
        buf.fill(np.ones(32, dtype=np.uint8))


def test_pool_recycled_slot_fresh_generation():
    pool = BufferPool(1, 16)
    a = pool.acquire()
    a.release()
    b = pool.acquire()
    assert b.valid and not a.valid
    assert b.index == a.index


def test_pool_validation():
    with pytest.raises(ValueError):
        BufferPool(0, 16)
    with pytest.raises(ValueError):
        BufferPool(1, 0)


# --- integrity ----------------------------------------------------------------------


def test_streaming_digest_matches_chunking():
    data = np.arange(10000, dtype=np.int64).astype(np.uint8)
    one = StreamingDigest().update(data).hexdigest()
    d = StreamingDigest()
    for i in range(0, len(data), 997):
        d.update(data[i : i + 997])
    assert d.hexdigest() == one
    assert d.total_bytes == len(data)


def test_streaming_digest_order_sensitive():
    a = np.array([1, 2, 3], dtype=np.uint8)
    b = np.array([3, 2, 1], dtype=np.uint8)
    assert (
        StreamingDigest().update(a).hexdigest()
        != StreamingDigest().update(b).hexdigest()
    )


def test_checksum_detects_corruption():
    data = np.random.default_rng(0).integers(0, 256, 4096).astype(np.uint8)
    c1 = checksum(data)
    data[100] ^= 0xFF
    assert checksum(data) != c1


def test_verify_equal():
    a = np.arange(100, dtype=np.uint8)
    assert verify_equal(a, a.copy())
    assert not verify_equal(a, a[:50])
    b = a.copy()
    b[0] ^= 1
    assert not verify_equal(a, b)


# --- scatter/gather --------------------------------------------------------------------


def test_sgl_append_and_totals():
    sgl = ScatterGatherList()
    sgl.append(np.zeros(10, dtype=np.uint8))
    sgl.append(np.zeros(20, dtype=np.uint8))
    assert sgl.n_segments == 2
    assert sgl.total_bytes == 30
    assert len(sgl) == 30


def test_sgl_rejects_non_uint8():
    sgl = ScatterGatherList()
    with pytest.raises(ValueError):
        sgl.append(np.zeros(4, dtype=np.float64))


def test_sgl_digest_equals_materialized():
    rng = np.random.default_rng(1)
    segs = [rng.integers(0, 256, n).astype(np.uint8) for n in (10, 0, 177, 4096)]
    sgl = ScatterGatherList(segs)
    whole = sgl.materialize()
    assert sgl.digest() == StreamingDigest().update(whole).hexdigest()


def test_sgl_slice_views_no_copy():
    base = np.arange(100, dtype=np.uint8)
    sgl = ScatterGatherList([base[:50], base[50:]])
    sub = sgl.slice(40, 20)
    assert sub.total_bytes == 20
    assert (sub.materialize() == base[40:60]).all()
    # mutate the base; the slice sees it (it's a view)
    base[45] = 250
    assert sub.materialize()[5] == 250


def test_sgl_slice_bounds():
    sgl = ScatterGatherList([np.zeros(10, dtype=np.uint8)])
    with pytest.raises(ValueError):
        sgl.slice(5, 10)


@given(
    st.lists(st.integers(min_value=0, max_value=64), min_size=1, max_size=8),
    st.data(),
)
@settings(max_examples=80, deadline=None)
def test_sgl_slice_matches_materialized_property(sizes, data):
    rng = np.random.default_rng(42)
    segs = [rng.integers(0, 256, n).astype(np.uint8) for n in sizes]
    sgl = ScatterGatherList(segs)
    total = sgl.total_bytes
    if total == 0:
        return
    offset = data.draw(st.integers(min_value=0, max_value=total - 1))
    length = data.draw(st.integers(min_value=0, max_value=total - offset))
    sub = sgl.slice(offset, length)
    assert (sub.materialize() == sgl.materialize()[offset : offset + length]).all()
