"""Regression: process-global stats totals must not leak across tests.

The autouse ``fresh_process_totals`` fixture (conftest.py) zeroes the
class-level ``total_*`` attributes of :class:`ServiceStats` and
:class:`FaultStats` before each test.  The two tests below would each
poison the other without it — pytest runs them in file order, and both
assert they start from a clean slate before dirtying it.
"""

from __future__ import annotations

from repro.faults.injector import FaultStats
from repro.service.broker import ServiceStats


def _dirty_both() -> None:
    s = ServiceStats()
    s.count_submitted()
    s.count_completed(1024.0)
    s.count_crash()
    s.count_lost(512.0)
    f = FaultStats()
    f.count_injected()
    f.count_domain()
    f.count_retransmit(4096.0)


def test_totals_start_clean_then_accumulate():
    assert all(v == 0 for v in ServiceStats.process_totals().values())
    assert all(v == 0 for v in FaultStats.process_totals().values())
    _dirty_both()
    assert ServiceStats.total_submitted == 1
    assert ServiceStats.total_bytes_completed == 1024.0
    assert ServiceStats.total_lost_bytes == 512.0
    assert FaultStats.total_faults_injected == 1
    assert FaultStats.total_domain_faults == 1


def test_totals_do_not_leak_from_previous_test():
    # If the fixture failed to reset, the previous test's counts would
    # still be visible here.
    assert all(v == 0 for v in ServiceStats.process_totals().values())
    assert all(v == 0 for v in FaultStats.process_totals().values())
    _dirty_both()
    # Totals reflect exactly this test's activity, nothing inherited.
    assert ServiceStats.total_submitted == 1
    assert FaultStats.total_retransmitted_bytes == 4096.0


def test_instance_counters_are_independent_of_reset():
    s = ServiceStats()
    s.count_submitted()
    from tests.conftest import _reset_process_totals
    _reset_process_totals(ServiceStats)
    # The class total is gone; the instance counter survives.
    assert ServiceStats.total_submitted == 0
    assert s.submitted == 1


def test_reset_preserves_counter_types():
    _dirty_both()
    from tests.conftest import _reset_process_totals
    _reset_process_totals(ServiceStats)
    _reset_process_totals(FaultStats)
    assert isinstance(ServiceStats.total_bytes_completed, float)
    assert isinstance(ServiceStats.total_submitted, int)
    assert isinstance(FaultStats.total_recovery_seconds, float)
    assert isinstance(FaultStats.total_reconnects, int)
