"""Workload generators: seeded determinism, distributions, arrival shapes."""

import math

import pytest

from repro.service import WorkloadConfig, WorkloadGenerator
from repro.sim.context import Context
from repro.util.units import MIB


def _collect(config, seed, until=20.0, n_nodes=2):
    """Run a generator against a recording sink; returns the submissions."""
    ctx = Context.create(seed=seed)
    events = []
    gen = WorkloadGenerator(
        ctx, config,
        lambda tenant, size, node: events.append(
            (ctx.now, tenant, size, node)),
        n_nodes=n_nodes)
    gen.start()
    ctx.sim.run(until=until)
    return events


def test_same_seed_same_submissions():
    cfg = WorkloadConfig(rate=40.0)
    a = _collect(cfg, seed=42)
    b = _collect(cfg, seed=42)
    assert a and a == b


def test_different_seeds_differ():
    cfg = WorkloadConfig(rate=40.0)
    assert _collect(cfg, seed=1) != _collect(cfg, seed=2)


def test_poisson_rate_roughly_honored():
    events = _collect(WorkloadConfig(rate=50.0), seed=0, until=40.0)
    # ~2000 expected; 5 sigma is ~220
    assert 1700 < len(events) < 2300


def test_diurnal_thins_below_peak():
    peak = WorkloadConfig(rate=50.0, arrival="poisson")
    diurnal = WorkloadConfig(rate=50.0, arrival="diurnal", diurnal_depth=0.8)
    n_peak = len(_collect(peak, seed=0, until=60.0))
    n_diurnal = len(_collect(diurnal, seed=0, until=60.0))
    # mean diurnal intensity is rate/(1+depth) = rate/1.8
    assert n_diurnal < 0.75 * n_peak


@pytest.mark.parametrize("dist", ["lognormal", "pareto"])
def test_size_distributions_hit_their_mean(dist):
    cfg = WorkloadConfig(rate=200.0, size_dist=dist, size_mean=64 * MIB)
    sizes = [size for _, _, size, _ in _collect(cfg, seed=3, until=60.0)]
    assert len(sizes) > 5000
    mean = sum(sizes) / len(sizes)
    # heavy-tailed, so the sample mean converges slowly; 25% is generous
    assert mean == pytest.approx(64 * MIB, rel=0.25)
    assert min(sizes) > 0


def test_tenants_and_nodes_within_bounds():
    cfg = WorkloadConfig(rate=100.0, n_tenants=4)
    events = _collect(cfg, seed=5, until=10.0, n_nodes=2)
    tenants = {t for _, t, _, _ in events}
    nodes = {n for _, _, _, n in events}
    assert tenants <= {f"tenant{i}" for i in range(4)}
    assert len(tenants) > 1  # actually multi-tenant
    assert nodes == {0, 1}


def test_idle_generator_is_byte_invisible():
    """Constructing (but not starting) a generator perturbs nothing."""
    def _run(with_idle):
        ctx = Context.create(seed=9)
        if with_idle:
            WorkloadGenerator(ctx, WorkloadConfig(), lambda *a: None)
        draws = ctx.rng.stream("probe").random(4).tolist()
        ctx.sim.run(until=1.0)
        return draws, ctx.now

    assert _run(False) == _run(True)


def test_stop_halts_submissions():
    ctx = Context.create(seed=1)
    events = []
    gen = WorkloadGenerator(ctx, WorkloadConfig(rate=50.0),
                            lambda *a: events.append(ctx.now))
    gen.start()
    ctx.sim.run(until=5.0)
    gen.stop()
    n = len(events)
    ctx.sim.run(until=20.0)
    assert len(events) == n > 0


def test_config_validation():
    with pytest.raises(ValueError):
        WorkloadConfig(rate=0.0)
    with pytest.raises(ValueError):
        WorkloadConfig(arrival="bursty")
    with pytest.raises(ValueError):
        WorkloadConfig(size_dist="uniform")
    with pytest.raises(ValueError):
        WorkloadConfig(diurnal_depth=1.0)
    with pytest.raises(ValueError):
        WorkloadConfig(pareto_alpha=1.0)
