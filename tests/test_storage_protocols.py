"""Tests for SCSI CDB and iSCSI PDU encoding (incl. property round-trips)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.iscsi import (
    BHS_SIZE,
    BasicHeaderSegment,
    IscsiError,
    LoginRequestPdu,
    LoginResponsePdu,
    PduOpcode,
    ScsiCommandPdu,
    ScsiResponsePdu,
    decode_pdu,
)
from repro.storage.scsi import BLOCK_SIZE, CDB, ScsiError, ScsiOp


# --- SCSI CDB ---------------------------------------------------------------------


def test_read16_encode_decode():
    cdb = CDB(ScsiOp.READ_16, lba=0x123456789A, blocks=2048)
    raw = cdb.encode()
    assert len(raw) == 16
    assert raw[0] == 0x88
    back = CDB.decode(raw)
    assert back == cdb


def test_write16_flags():
    cdb = CDB.write(4096, 8192)
    assert cdb.is_write and cdb.is_data_transfer
    assert cdb.lba == 8 and cdb.blocks == 16
    assert cdb.byte_offset == 4096 and cdb.byte_length == 8192


def test_read_helper_alignment_enforced():
    with pytest.raises(ScsiError):
        CDB.read(100, 512)
    with pytest.raises(ScsiError):
        CDB.read(512, 100)
    with pytest.raises(ScsiError):
        CDB.read(0, 0)


def test_inquiry_and_tur_round_trip():
    for op in (ScsiOp.INQUIRY, ScsiOp.TEST_UNIT_READY, ScsiOp.READ_CAPACITY_16):
        cdb = CDB(op)
        back = CDB.decode(cdb.encode())
        assert back.op is op
        assert not back.is_data_transfer


def test_decode_junk_rejected():
    with pytest.raises(ScsiError):
        CDB.decode(b"")
    with pytest.raises(ScsiError):
        CDB.decode(bytes([0x88, 0, 0]))  # short READ(16)
    with pytest.raises(ScsiError):
        CDB.decode(bytes([0xFF] * 16))  # unknown opcode


def test_zero_block_transfer_rejected():
    raw = CDB(ScsiOp.READ_16, lba=0, blocks=1).encode()
    raw = raw[:10] + bytes(4) + raw[14:]  # zero the transfer length
    with pytest.raises(ScsiError):
        CDB.decode(raw)


@given(
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.integers(min_value=1, max_value=(1 << 32) - 1),
    st.sampled_from([ScsiOp.READ_16, ScsiOp.WRITE_16]),
)
@settings(max_examples=200, deadline=None)
def test_cdb_round_trip_property(lba, blocks, op):
    cdb = CDB(op, lba=lba, blocks=blocks)
    assert CDB.decode(cdb.encode()) == cdb


# --- iSCSI PDUs -----------------------------------------------------------------------


def test_bhs_round_trip():
    bhs = BasicHeaderSegment(
        opcode=PduOpcode.SCSI_COMMAND,
        flags=0xC0,
        data_segment_length=0x123456,
        lun=3,
        initiator_task_tag=0xDEADBEEF,
        opcode_specific=bytes(range(28)),
    )
    raw = bhs.encode()
    assert len(raw) == BHS_SIZE
    assert BasicHeaderSegment.decode(raw) == bhs


def test_bhs_dsl_range():
    with pytest.raises(IscsiError):
        BasicHeaderSegment(
            opcode=PduOpcode.NOP_OUT, data_segment_length=1 << 24
        ).encode()


def test_bhs_short_buffer_rejected():
    with pytest.raises(IscsiError):
        BasicHeaderSegment.decode(bytes(10))


def test_bhs_unknown_opcode_rejected():
    raw = bytearray(BasicHeaderSegment(opcode=PduOpcode.NOP_OUT).encode())
    raw[0] = 0x3F
    with pytest.raises(IscsiError):
        BasicHeaderSegment.decode(bytes(raw))


def test_scsi_command_pdu_round_trip():
    pdu = ScsiCommandPdu(
        lun=2,
        task_tag=77,
        cdb=CDB.read(0, 1 << 20),
        expected_data_length=1 << 20,
    )
    back = decode_pdu(pdu.encode())
    assert isinstance(back, ScsiCommandPdu)
    assert back.lun == 2 and back.task_tag == 77
    assert back.cdb == pdu.cdb
    assert back.expected_data_length == 1 << 20


def test_scsi_command_pdu_flags():
    raw = ScsiCommandPdu(
        lun=0, task_tag=1, cdb=CDB.write(0, BLOCK_SIZE), expected_data_length=BLOCK_SIZE
    ).encode()
    bhs = BasicHeaderSegment.decode(raw)
    assert bhs.flags & ScsiCommandPdu.FLAG_WRITE
    assert not bhs.flags & ScsiCommandPdu.FLAG_READ


def test_scsi_response_round_trip():
    pdu = ScsiResponsePdu(task_tag=9, status=2, residual=100)
    back = decode_pdu(pdu.encode())
    assert isinstance(back, ScsiResponsePdu)
    assert back.status == 2 and back.residual == 100 and back.task_tag == 9


def test_login_round_trip():
    req = LoginRequestPdu("iqn.init", "iqn.tgt", task_tag=5)
    bhs_raw, text = req.encode()
    back = LoginRequestPdu.from_bhs(BasicHeaderSegment.decode(bhs_raw), text)
    assert back == req
    resp = LoginResponsePdu(task_tag=5, status_class=0)
    back2 = decode_pdu(resp.encode())
    assert isinstance(back2, LoginResponsePdu)
    assert back2.status_class == 0


def test_login_missing_keys_rejected():
    req = LoginRequestPdu("iqn.init", "iqn.tgt")
    bhs_raw, _ = req.encode()
    with pytest.raises(IscsiError):
        LoginRequestPdu.from_bhs(BasicHeaderSegment.decode(bhs_raw), b"garbage")


@given(
    st.integers(min_value=0, max_value=(1 << 24) - 1),
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.sampled_from(list(PduOpcode)),
    st.binary(min_size=28, max_size=28),
)
@settings(max_examples=150, deadline=None)
def test_bhs_round_trip_property(dsl, lun, itt, opcode, specific):
    bhs = BasicHeaderSegment(
        opcode=opcode,
        flags=0x80,
        data_segment_length=dsl,
        lun=lun,
        initiator_task_tag=itt,
        opcode_specific=specific,
    )
    assert BasicHeaderSegment.decode(bhs.encode()) == bhs
