"""Unit tests for Resource / Store / Container."""

import pytest

from repro.sim import Container, Resource, Simulator, Store
from repro.sim.engine import SimulationError


# --- Resource ---------------------------------------------------------------


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    holds = []

    def worker(i):
        req = res.request()
        yield req
        holds.append((i, sim.now))
        yield sim.timeout(1.0)
        res.release(req)

    for i in range(4):
        sim.process(worker(i))
    sim.run()
    # first two at t=0, next two at t=1
    assert [t for _, t in holds] == [0.0, 0.0, 1.0, 1.0]


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(i):
        req = res.request()
        yield req
        order.append(i)
        yield sim.timeout(1.0)
        res.release(req)

    for i in range(5):
        sim.process(worker(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_priority_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(1.0)
        res.release(req)

    def worker(i, prio):
        yield sim.timeout(0.1)  # queue up behind the holder
        req = res.request(priority=prio)
        yield req
        order.append(i)
        res.release(req)

    sim.process(holder())
    sim.process(worker("low", prio=5))
    sim.process(worker("high", prio=1))
    sim.run()
    assert order == ["high", "low"]


def test_resource_release_non_user_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req = res.request()
    sim.run()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_resource_counts():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    sim.run()
    assert res.count == 1 and res.queue_len == 1
    res.release(r1)
    sim.run()
    assert res.count == 1 and res.queue_len == 0
    res.release(r2)
    assert res.count == 0


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


# --- Store -------------------------------------------------------------------


def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield sim.timeout(1.0)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert [i for i, _ in got] == [0, 1, 2]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    times = []

    def producer():
        for i in range(3):
            yield store.put(i)
            times.append(sim.now)

    def consumer():
        for _ in range(3):
            yield sim.timeout(2.0)
            yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    # put#0 immediate; put#1 after first get at t=2; put#2 after t=4
    assert times == [0.0, 2.0, 4.0]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(5.0)
        yield store.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("x", 5.0)]


def test_store_predicate_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def run():
        yield store.put("a")
        yield store.put("b")
        item = yield store.get(predicate=lambda x: x == "b")
        got.append(item)
        item = yield store.get()
        got.append(item)

    sim.process(run())
    sim.run()
    assert got == ["b", "a"]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None

    def run():
        yield store.put(1)

    sim.process(run())
    sim.run()
    assert store.try_get() == 1
    assert store.try_get() is None


def test_store_len():
    sim = Simulator()
    store = Store(sim)

    def run():
        yield store.put(1)
        yield store.put(2)

    sim.process(run())
    sim.run()
    assert len(store) == 2


# --- Container ------------------------------------------------------------------


def test_container_get_blocks_until_level():
    sim = Simulator()
    c = Container(sim, capacity=10.0, init=0.0)
    times = []

    def consumer():
        yield c.get(5.0)
        times.append(sim.now)

    def producer():
        yield sim.timeout(1.0)
        yield c.put(2.0)
        yield sim.timeout(1.0)
        yield c.put(3.0)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert times == [2.0]
    assert c.level == 0.0


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    c = Container(sim, capacity=5.0, init=5.0)
    times = []

    def producer():
        yield c.put(3.0)
        times.append(sim.now)

    def consumer():
        yield sim.timeout(4.0)
        yield c.get(3.0)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert times == [4.0]
    assert c.level == 5.0


def test_container_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=0)
    with pytest.raises(ValueError):
        Container(sim, capacity=1.0, init=2.0)
    c = Container(sim, capacity=1.0)
    with pytest.raises(ValueError):
        c.get(0)
    with pytest.raises(ValueError):
        c.put(-1)
