"""Shard-runtime units: slicing, water-filling, ports, REPRO_JOBS."""

import numpy as np
import pytest

from repro.exec.runner import ExecContext, default_jobs, executor
from repro.sim.shard import (BoundaryLink, ShardStats, cell_seed,
                             run_sharded, slice_cells)
from repro.sim.shard import _waterfill


# -- cell slicing ----------------------------------------------------------

def test_slices_are_balanced_and_contiguous():
    slices = slice_cells(10, 3)
    assert [len(s) for s in slices] == [4, 3, 3]
    assert [c for s in slices for c in s] == list(range(10))


def test_slices_clamp_to_cell_count():
    assert slice_cells(2, 8) == [[0], [1]]
    assert slice_cells(5, 1) == [list(range(5))]
    assert slice_cells(5, 0) == [list(range(5))]


def test_cell_seeds_are_distinct_and_shard_independent():
    seeds = [cell_seed(7, c) for c in range(64)]
    assert len(set(seeds)) == 64
    # The recipe depends only on (seed, cell) — never on shard layout.
    assert cell_seed(7, 3) == seeds[3]


# -- the coordinator's water-fill ------------------------------------------

def test_waterfill_splits_capacity_over_hungry_flows():
    shares = _waterfill(90.0, np.array([np.inf, np.inf, np.inf]))
    assert shares == pytest.approx([30.0, 30.0, 30.0])


def test_waterfill_caps_small_wants_and_spills_to_hungry():
    shares = _waterfill(100.0, np.array([10.0, np.inf, np.inf]))
    assert shares == pytest.approx([10.0, 45.0, 45.0])


def test_waterfill_undersubscribed_grants_every_want():
    wants = np.array([10.0, 20.0, 5.0])
    assert _waterfill(100.0, wants) == pytest.approx(list(wants))


def test_waterfill_conserves_capacity_when_oversubscribed():
    wants = np.array([40.0, 15.0, np.inf, 25.0, np.inf])
    shares = _waterfill(60.0, wants)
    assert float(shares.sum()) == pytest.approx(60.0)
    assert all(s <= w + 1e-9 for s, w in zip(shares, wants))


# -- run_sharded validation + exchange accounting --------------------------

def _demo_kwargs(**over):
    kw = dict(
        target="repro.sim.shard:demo_cell",
        n_cells=2,
        boundaries=[BoundaryLink("wan0", 1e9)],
        horizon=4.0, epoch_dt=1.0,
        params={"n_local": 1, "cross_rate": 100e6},
        seed=3,
    )
    kw.update(over)
    return kw


def test_rejects_fractional_epoch_horizon():
    with pytest.raises(ValueError, match="whole number of epochs"):
        run_sharded(**_demo_kwargs(horizon=3.5))


def test_rejects_duplicate_boundary_names():
    with pytest.raises(ValueError, match="unique"):
        run_sharded(**_demo_kwargs(
            boundaries=[BoundaryLink("wan0", 1e9), BoundaryLink("wan0", 2e9)]))


def test_unsaturated_boundary_early_accepts_in_one_round():
    before = ShardStats.total_early_accepts
    result = run_sharded(**_demo_kwargs())
    ex = result["exchange"]
    assert ex["early_accept"] and ex["converged"]
    assert ex["rounds"] == 1
    assert ShardStats.total_early_accepts == before + 1
    # 2 capped cross flows at 100 MB/s over 4 s.
    assert ex["boundaries"]["wan0"]["bytes"] == pytest.approx(8e8, rel=1e-6)
    assert ex["boundaries"]["wan0"]["utilization"] == pytest.approx(
        0.2, rel=1e-6)


def test_fixed_round_mode_runs_exactly_that_many_rounds():
    result = run_sharded(**_demo_kwargs(fixed_rounds=3))
    assert result["exchange"]["rounds"] == 3
    assert result["exchange"]["converged"]


def test_contended_boundary_converges_within_round_budget():
    result = run_sharded(**_demo_kwargs(
        boundaries=[BoundaryLink("wan0", 100e6)],
        params={"n_local": 1, "cross_rate": None}))
    ex = result["exchange"]
    assert ex["converged"] and not ex["early_accept"]
    assert 1 < ex["rounds"] <= 6
    assert ex["boundaries"]["wan0"]["utilization"] <= 1.0 + 1e-6


# -- REPRO_JOBS default worker count ---------------------------------------

def test_default_jobs_unset_is_serial(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    assert ExecContext().effective_jobs == 1


def test_repro_jobs_sets_the_default(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert default_jobs() == 5
    assert ExecContext().effective_jobs == 5


def test_repro_jobs_auto_resolves_to_cpu_count(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "auto")
    assert default_jobs() == 0
    assert ExecContext().effective_jobs >= 1


def test_explicit_jobs_beats_the_environment(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert ExecContext(jobs=2).effective_jobs == 2
    with executor(jobs=3) as ctx:
        assert ctx.effective_jobs == 3


@pytest.mark.parametrize("bad", ["zero", "0", "-2", "1.5"])
def test_repro_jobs_rejects_garbage(monkeypatch, bad):
    monkeypatch.setenv("REPRO_JOBS", bad)
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        default_jobs()
