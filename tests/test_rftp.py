"""Tests for RFTP: protocol framing, fluid transfers, real-byte integrity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.rftp import (
    BlockDescriptor,
    CreditGrant,
    FileRequest,
    RftpConfig,
    RftpTransfer,
    TransferComplete,
    decode_message,
    rftp_send_file,
)
from repro.apps.rftp.protocol import RftpProtocolError
from repro.datapath.integrity import StreamingDigest
from repro.fs import O_RDONLY, O_RDWR, XfsFileSystem
from repro.hw import Machine, Nic, NicKind, frontend_lan_host, wan_host
from repro.kernel import NumaPolicy, place_region
from repro.net.link import connect
from repro.net.topology import wire_frontend_lan, wire_wan
from repro.sim.context import Context
from repro.storage import RamDisk
from repro.util.units import KIB, MIB, to_gbps


# --- protocol framing -----------------------------------------------------------


def test_file_request_round_trip():
    req = FileRequest(path="data/run-42.bin", size=1 << 40, block_size=4 * MIB)
    assert decode_message(req.encode()) == req


def test_block_descriptor_round_trip():
    d = BlockDescriptor(sequence=7, offset=3 << 30, length=4 * MIB,
                        rkey=0xDEADBEEF, crc32=0x12345678)
    assert decode_message(d.encode()) == d


def test_credit_grant_round_trip():
    g = CreditGrant(credits=16)
    assert decode_message(g.encode()) == g


def test_transfer_complete_round_trip():
    t = TransferComplete(n_blocks=1000, digest_hex="ab" * 16)
    assert decode_message(t.encode()) == t


def test_decode_junk_rejected():
    with pytest.raises(RftpProtocolError):
        decode_message(b"")
    with pytest.raises(RftpProtocolError):
        decode_message(bytes([0x99, 0, 0]))
    with pytest.raises(RftpProtocolError):
        decode_message(bytes([0x02, 0, 0]))  # truncated descriptor


def test_protocol_validation():
    with pytest.raises(RftpProtocolError):
        FileRequest(path="", size=10, block_size=1).encode()
    with pytest.raises(RftpProtocolError):
        BlockDescriptor(0, 0, 0, 0, 0).encode()
    with pytest.raises(RftpProtocolError):
        CreditGrant(0).encode()
    with pytest.raises(RftpProtocolError):
        TransferComplete(1, "zz").encode()


@given(
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.integers(min_value=1, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
)
@settings(max_examples=150, deadline=None)
def test_block_descriptor_property(seq, offset, length, rkey, crc):
    d = BlockDescriptor(seq, offset, length, rkey % (1 << 64), crc)
    assert decode_message(d.encode()) == d


@given(st.text(min_size=1, max_size=60).filter(lambda s: len(s.encode()) <= 255),
       st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=1, max_value=(1 << 63)))
@settings(max_examples=100, deadline=None)
def test_file_request_property(path, size, bs):
    req = FileRequest(path=path, size=size, block_size=bs)
    assert decode_message(req.encode()) == req


# --- fluid transfer --------------------------------------------------------------


def test_rftp_zero_to_null_single_link():
    ctx = Context.create(seed=1)
    a = Machine(ctx, "a", pcie_sockets=(0,))
    b = Machine(ctx, "b", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    connect(na, nb)
    res = RftpTransfer(ctx, a, b, source="zero", sink="null",
                       config=RftpConfig(streams_per_link=2)).run(10.0)
    # fills the 40G link (paper Fig. 4 setup: both tools hit 39 Gbps)
    assert to_gbps(res.goodput) == pytest.approx(39.5, rel=0.03)
    assert res.sender_accounting.total_seconds > 0
    # zero-copy: no copy category at all
    assert "copy" not in res.sender_accounting.seconds_by_category()


def test_rftp_three_links_aggregate():
    ctx = Context.create(seed=2)
    a = frontend_lan_host(ctx, "a")
    b = frontend_lan_host(ctx, "b")
    wire_frontend_lan(a, b)
    res = RftpTransfer(ctx, a, b, source="zero", sink="null",
                       config=RftpConfig(streams_per_link=2)).run(10.0)
    assert to_gbps(res.goodput) > 100  # 3 x ~39.5
    assert len(res.per_link_bytes) == 3


def test_rftp_wan_credit_limit():
    """On the 95 ms path a single small-block stream is credit-capped."""
    ctx = Context.create(seed=3)
    nersc, anl = wan_host(ctx, "n"), wan_host(ctx, "a")
    wire_wan(nersc, anl)
    bs = 256 * KIB
    res = RftpTransfer(
        ctx, nersc, anl, source="zero", sink="null",
        config=RftpConfig(block_size=bs, streams_per_link=1),
    ).run(20.0)
    expected = ctx.cal.rftp_credits_per_stream * bs / 0.095
    assert res.goodput == pytest.approx(expected, rel=0.1)


def test_rftp_wan_many_streams_fill_link():
    ctx = Context.create(seed=4)
    nersc, anl = wan_host(ctx, "n"), wan_host(ctx, "a")
    link = wire_wan(nersc, anl)
    res = RftpTransfer(
        ctx, nersc, anl, source="zero", sink="null",
        config=RftpConfig(block_size=16 * MIB, streams_per_link=8),
    ).run(20.0)
    assert res.goodput > 0.9 * link.rate  # paper: 97% of raw


def test_rftp_sized_transfer_completes():
    ctx = Context.create(seed=5)
    a = Machine(ctx, "a", pcie_sockets=(0,))
    b = Machine(ctx, "b", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    connect(na, nb)
    xfer = RftpTransfer(ctx, a, b, source="zero", sink="null")
    xfer.start(size=1e9)
    flows = ctx.sim.run(until=xfer.ready)
    for f in flows:
        ctx.sim.run(until=f.done)
    assert xfer.transferred() == pytest.approx(1e9)


def test_rftp_double_start_rejected():
    ctx = Context.create(seed=6)
    a = Machine(ctx, "a", pcie_sockets=(0,))
    b = Machine(ctx, "b", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    connect(na, nb)
    xfer = RftpTransfer(ctx, a, b)
    xfer.start()
    with pytest.raises(RuntimeError):
        xfer.start()


def test_rftp_config_validation():
    with pytest.raises(ValueError):
        RftpConfig(block_size=0)
    with pytest.raises(ValueError):
        RftpConfig(streams_per_link=0)


# --- event-level file transfer with real bytes --------------------------------------


def file_transfer_env(seed=7):
    ctx = Context.create(seed=seed)
    a = Machine(ctx, "src-host", pcie_sockets=(0,))
    b = Machine(ctx, "dst-host", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    connect(na, nb)
    src_disk = RamDisk(ctx, "src-disk",
                       place_region(64 * MIB, NumaPolicy.bind(0), 2),
                       store_data=True)
    dst_disk = RamDisk(ctx, "dst-disk",
                       place_region(64 * MIB, NumaPolicy.bind(0), 2),
                       store_data=True)
    src_fs = XfsFileSystem(ctx, src_disk)
    dst_fs = XfsFileSystem(ctx, dst_disk)
    return ctx, na, nb, src_fs, dst_fs


def test_rftp_file_transfer_verified_integrity():
    ctx, na, nb, src_fs, dst_fs = file_transfer_env()
    size = 5 * MIB + 12345  # deliberately unaligned tail block
    payload = (np.arange(size, dtype=np.int64) * 2654435761 % 251).astype(np.uint8)
    src_fs.create("in.bin", size)
    fh = src_fs.open("in.bin", O_RDWR)
    ctx.sim.run(until=fh.write(payload))

    done = rftp_send_file(
        ctx, source_fs=src_fs, sink_fs=dst_fs,
        src_path="in.bin", dst_path="out.bin",
        client_nic=na, server_nic=nb, block_size=1 * MIB, credits=4,
    )
    digest = ctx.sim.run(until=done)
    assert digest == StreamingDigest().update(payload).hexdigest()

    out = np.zeros(size, dtype=np.uint8)
    fh2 = dst_fs.open("out.bin", O_RDONLY)
    ctx.sim.run(until=fh2.read(size, data=out))
    assert np.array_equal(out, payload)


def test_rftp_file_transfer_detects_corruption():
    """A fault injected into the landing buffer fails the digest check."""
    ctx, na, nb, src_fs, dst_fs = file_transfer_env(seed=8)
    size = 2 * MIB
    payload = np.full(size, 7, dtype=np.uint8)
    src_fs.create("in.bin", size)
    ctx.sim.run(until=src_fs.open("in.bin", O_RDWR).write(payload))

    # corrupt the source mid-flight: flip bytes in the source filesystem
    # after the first block is likely read
    def corrupt():
        yield ctx.sim.timeout(0.001)
        src_fs.device.data[100] ^= 0xFF

    ctx.sim.process(corrupt())
    done = rftp_send_file(
        ctx, source_fs=src_fs, sink_fs=dst_fs,
        src_path="in.bin", dst_path="out.bin",
        client_nic=na, server_nic=nb, block_size=1 * MIB,
    )
    # transfer either succeeds with the *corrupted* content consistently
    # digested, or fails — but it must never silently deliver bytes whose
    # digest mismatches what was read
    try:
        digest = ctx.sim.run(until=done)
    except IOError:
        return
    out = np.zeros(size, dtype=np.uint8)
    ctx.sim.run(until=dst_fs.open("out.bin", O_RDONLY).read(size, data=out))
    assert digest == StreamingDigest().update(out).hexdigest()


def test_rftp_file_transfer_is_timed():
    """The simulated transfer time reflects the link rate."""
    ctx, na, nb, src_fs, dst_fs = file_transfer_env(seed=9)
    size = 8 * MIB
    src_fs.create("in.bin", size)
    ctx.sim.run(until=src_fs.open("in.bin", O_RDWR).write(size))
    t0 = ctx.sim.now
    done = rftp_send_file(
        ctx, source_fs=src_fs, sink_fs=dst_fs,
        src_path="in.bin", dst_path="out.bin",
        client_nic=na, server_nic=nb, block_size=1 * MIB,
    )
    ctx.sim.run(until=done)
    elapsed = ctx.sim.now - t0
    # must be at least the serialization time on the 40G link
    assert elapsed > size / na.link.rate
    # and within a couple orders (no runaway latency)
    assert elapsed < 1.0
