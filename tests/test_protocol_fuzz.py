"""Fuzz the wire-format decoders.

A decoder fed arbitrary bytes must either return a valid object or raise
its *typed* protocol error — never an IndexError, struct.error or other
internal exception.  These properties catch the classic parser bugs
(short reads, bad enum values, length-field lies).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.rftp.protocol import RftpProtocolError, decode_message
from repro.storage.iscsi import BasicHeaderSegment, IscsiError, decode_pdu
from repro.storage.scsi import CDB, ScsiError


@given(st.binary(max_size=64))
@settings(max_examples=400, deadline=None)
def test_cdb_decoder_total(raw):
    try:
        cdb = CDB.decode(raw)
    except ScsiError:
        return
    # decoded successfully: must re-encode to a parseable CDB
    assert CDB.decode(cdb.encode()).op is cdb.op


@given(st.binary(max_size=96))
@settings(max_examples=400, deadline=None)
def test_bhs_decoder_total(raw):
    try:
        bhs = BasicHeaderSegment.decode(raw)
    except IscsiError:
        return
    assert BasicHeaderSegment.decode(bhs.encode()).opcode is bhs.opcode


@given(st.binary(max_size=96))
@settings(max_examples=400, deadline=None)
def test_pdu_dispatch_total(raw):
    try:
        decode_pdu(raw)
    except IscsiError:
        pass


@given(st.binary(max_size=64))
@settings(max_examples=400, deadline=None)
def test_rftp_decoder_total(raw):
    try:
        msg = decode_message(raw)
    except RftpProtocolError:
        return
    # valid messages round-trip
    assert type(decode_message(msg.encode())) is type(msg)


@given(st.binary(min_size=1, max_size=48).map(lambda b: bytes([0x02]) + b))
@settings(max_examples=200, deadline=None)
def test_rftp_block_descriptor_prefix_fuzz(raw):
    """Tag-valid but possibly-truncated descriptors never crash."""
    try:
        decode_message(raw)
    except RftpProtocolError:
        pass


@given(st.binary(min_size=48, max_size=48))
@settings(max_examples=300, deadline=None)
def test_full_size_bhs_fuzz(raw):
    """Exactly-48-byte inputs: decode is total over the opcode space."""
    try:
        bhs = BasicHeaderSegment.decode(raw)
        decode_pdu(raw)
    except IscsiError:
        return
    assert bhs.data_segment_length < (1 << 24)
