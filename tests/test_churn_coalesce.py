"""Churn coalescing: bulk lifecycle fast path, burst determinism.

The coalescing contract (MODELING.md §13): flow transitions inside one
simulation instant settle immediately but defer their rebalance to a
single flush when the event clock advances or a reader needs rates —
and nothing observable changes.  These tests pin

* the engine's advance hooks (flush points at clock advance and every
  ``run()`` exit),
* the bulk ``start_many``/``finish_many`` API and the rate/load
  read-triggered flush,
* burst-arrival determinism: same-seed, same-timestamp arrival bursts
  produce identical ledgers across ``REPRO_CHURN=eager|coalesce``,
  ``REPRO_FLUID_SOLVER=python|array``, and sharded vs single-process
  runs.
"""

import json

import pytest

from repro.exec.runner import executor
from repro.service import (BrokerConfig, RailFleet, TransferBroker,
                           WorkloadConfig)
from repro.service.fabric import FabricSpec, run_fabric
from repro.service.workload import WorkloadGenerator
from repro.sim.context import Context
from repro.sim.engine import Simulator
from repro.sim.fluid import (FluidFlow, FluidResource, FluidScheduler,
                             default_churn)
from repro.util.units import MIB

# --- engine advance hooks ------------------------------------------------------


def test_advance_hook_runs_before_clock_advances():
    sim = Simulator()
    seen = []
    sim.add_advance_hook(lambda: seen.append(sim.now))
    sim.timeout(1.0)
    sim.timeout(1.0)  # same instant: one flush covers both
    sim.timeout(2.0)
    sim.run()
    # fired before leaving t=0, t=1, t=2 (and at the drain boundary)
    assert seen[0] == 0.0
    assert 1.0 in seen and 2.0 in seen


def test_advance_hook_scheduled_events_are_drained():
    sim = Simulator()
    fired = []

    def hook():
        if not fired:
            fired.append(sim.now)
            sim.timeout(3.0).add_callback(lambda ev: fired.append(sim.now))

    sim.add_advance_hook(hook)
    sim.timeout(1.0)
    sim.run()  # the hook-scheduled timeout must still run
    assert fired == [0.0, 3.0]
    assert sim.now == 3.0


# --- coalesced scheduler semantics ---------------------------------------------


def _sched(sim, churn, solver="python"):
    return FluidScheduler(sim, solver=solver, churn=churn)


def test_same_instant_burst_coalesces_to_one_rebalance():
    sim = Simulator()
    fl = _sched(sim, "coalesce")
    res = FluidResource(fl, 100.0, "link")
    flows = [FluidFlow([(res, 1.0)], size=50.0, name=f"f{i}")
             for i in range(8)]
    fl.start_many(flows)
    assert fl.stats.rebalances == 0  # deferred
    fl.flush()
    assert fl.stats.rebalances == 1  # one pass covered all eight
    assert flows[0].rate == pytest.approx(100.0 / 8)


def test_eager_burst_rebalances_per_transition():
    sim = Simulator()
    fl = _sched(sim, "eager")
    res = FluidResource(fl, 100.0, "link")
    flows = [FluidFlow([(res, 1.0)], size=50.0, name=f"f{i}")
             for i in range(8)]
    fl.start_many(flows)  # degrades to the exact per-flow loop
    assert fl.stats.rebalances == 8


def test_rate_read_flushes_pending_rebalance():
    sim = Simulator()
    fl = _sched(sim, "coalesce")
    res = FluidResource(fl, 100.0, "link")
    f = FluidFlow([(res, 1.0)], size=None, cap=30.0, name="f")
    fl.start(f)
    assert f.rate == pytest.approx(30.0)  # the read forced the flush
    assert fl.stats.rebalances == 1
    assert res.load == pytest.approx(30.0)
    assert fl.stats.rebalances == 1  # already settled: no second pass


def test_finish_many_freezes_bytes_in_one_settle():
    for churn in ("coalesce", "eager"):
        sim = Simulator()
        fl = _sched(sim, churn)
        res = FluidResource(fl, 100.0, "link")
        flows = [FluidFlow([(res, 1.0)], size=None, name=f"f{i}")
                 for i in range(4)]
        fl.start_many(flows)
        sim.run(until=2.0)
        moved = fl.finish_many(flows)
        assert moved == pytest.approx([50.0] * 4)
        assert all(not f._active for f in flows)


def test_bulk_api_matches_sequential_loops():
    def run(bulk: bool):
        sim = Simulator()
        fl = _sched(sim, "coalesce")
        res = FluidResource(fl, 120.0, "link")
        flows = [FluidFlow([(res, 1.0)], size=60.0, name=f"f{i}")
                 for i in range(3)]
        if bulk:
            events = fl.start_many(flows)
        else:
            events = [fl.start(f) for f in flows]
        sim.run(until=events[0])
        return [(f.transferred, f.finished_at) for f in flows]

    assert run(bulk=True) == run(bulk=False)


def test_default_churn_env(monkeypatch):
    monkeypatch.delenv("REPRO_CHURN", raising=False)
    assert default_churn() == "coalesce"
    monkeypatch.setenv("REPRO_CHURN", "eager")
    assert default_churn() == "eager"
    monkeypatch.setenv("REPRO_CHURN", "lazy-ish")
    with pytest.raises(ValueError, match="REPRO_CHURN"):
        default_churn()
    with pytest.raises(ValueError, match="churn"):
        FluidScheduler(Simulator(), churn="bogus")


# --- broker bulk lifecycle -----------------------------------------------------


def _broker(seed=0, **cfg):
    ctx = Context.create(seed=seed)
    fleet = RailFleet(ctx, n_hosts=1)
    return ctx, TransferBroker(ctx, fleet, BrokerConfig(**cfg))


def test_submit_many_matches_submit_loop():
    arrivals = [(f"t{i % 3}", (32 + 8 * i) * MIB, i % 2) for i in range(12)]

    ctx_a, broker_a = _broker(seed=1)
    ids_a = broker_a.submit_many(arrivals)
    ctx_a.sim.run(until=30.0)

    ctx_b, broker_b = _broker(seed=1)
    ids_b = [broker_b.submit(t, s, n) for t, s, n in arrivals]
    ctx_b.sim.run(until=30.0)

    assert ids_a == ids_b
    assert json.dumps(broker_a.summary(), sort_keys=True) == json.dumps(
        broker_b.summary(), sort_keys=True)


def test_submit_many_sheds_in_arrival_order():
    # quota 1, queue 1: first runs, second queues, the rest shed.
    ctx, broker = _broker(seed=0, tenant_quota=1, max_queue=1)
    ids = broker.submit_many([("t0", 64 * MIB, 0)] * 4)
    assert ids[0] is not None and ids[1] is not None
    assert ids[2] is None and ids[3] is None
    assert broker.stats.shed == 2
    ctx.sim.run(until=30.0)
    assert broker.stats.completed == 2


def test_route_memo_warms_and_invalidates_on_faults():
    ctx, broker = _broker(seed=0)
    broker.submit_many([("t0", 16 * MIB, 0), ("t1", 16 * MIB, 0)])
    assert broker._path_cache  # warmed by the dispatch pass
    dead = broker.fleet.rails[0]
    broker.on_link_down(dead.link, permanent=False)
    # the dead rail's memoized routes are gone (survivors may re-warm)
    assert all(key[0] != dead.index for key in broker._path_cache)
    before = dict(broker._path_cache)
    broker.on_link_up(dead.link)
    # restoration invalidates again; the revived rail is routable anew
    jid = broker.submit("t2", 16 * MIB, 0)
    assert jid is not None
    assert broker._path_cache != before or broker._path_cache


# --- burst-arrival determinism matrix ------------------------------------------

BURST_SPEC = FabricSpec(
    n_pods=2, hosts_per_pod=2, n_wan_links=1, wan_gbps=20.0,
    elephants_per_pod=1, elephant_gbps=4.0,
    rate_per_host=4.0, size_mean_mib=16.0, size_dist="fixed", burst=6,
    n_tenants=4, wan_tenants=2, serve_s=2.0, horizon_s=3.0)


def _canon(result: dict) -> str:
    masked = dict(result, exchange=dict(result["exchange"], n_shards=None))
    return json.dumps(masked, sort_keys=True, default=str)


@pytest.mark.parametrize("solver", ["python", "array"])
def test_burst_ledgers_identical_across_churn_modes(monkeypatch, solver):
    monkeypatch.setenv("REPRO_FLUID_SOLVER", solver)
    ledgers = set()
    for churn in ("eager", "coalesce"):
        monkeypatch.setenv("REPRO_CHURN", churn)
        ledgers.add(_canon(run_fabric(BURST_SPEC, seed=11, sharded=False)))
    assert len(ledgers) == 1


def test_burst_ledgers_identical_across_shards_and_workers(monkeypatch):
    # The sharded contract (MODELING.md §12): byte-identical ledgers at
    # any worker or shard count; the single-process reference agrees on
    # every job-census total (its un-quantized rates may shift
    # individual latencies within an epoch).
    monkeypatch.setenv("REPRO_CHURN", "coalesce")
    ledgers = set()
    for jobs, n_shards in ((1, 1), (2, 2)):
        with executor(jobs=jobs):
            ledgers.add(_canon(run_fabric(BURST_SPEC, seed=11,
                                          n_shards=n_shards,
                                          fixed_rounds=2)))
    assert len(ledgers) == 1

    def totals(result):
        return [(c["pod"], c["completed"], c["shed"], c["wan_jobs"])
                for c in result["cells"]]

    with executor(jobs=1):
        sharded = run_fabric(BURST_SPEC, seed=11, n_shards=1,
                             fixed_rounds=2)
    reference = run_fabric(BURST_SPEC, seed=11, sharded=False)
    assert totals(sharded) == totals(reference)


def test_burst_one_never_uses_bulk_ingress():
    # burst=1 must stay call-for-call identical to the classic per-tick
    # process: the bulk ingress is never touched.
    ctx = Context.create(seed=3)
    calls = []

    def boom(jobs):
        raise AssertionError("bulk ingress used for burst=1")

    gen = WorkloadGenerator(
        ctx, WorkloadConfig(rate=50.0, burst=1),
        lambda t, s, n: calls.append((t, s, n)), submit_many=boom)
    gen.start()
    ctx.sim.run(until=1.0)
    assert calls


def test_burst_draws_identical_with_and_without_bulk_ingress():
    def collect(use_bulk: bool):
        ctx = Context.create(seed=3)
        calls = []
        gen = WorkloadGenerator(
            ctx, WorkloadConfig(rate=50.0, burst=3),
            lambda t, s, n: calls.append((t, s, n)),
            submit_many=(calls.extend if use_bulk else None))
        gen.start()
        ctx.sim.run(until=1.0)
        return calls

    bulk, loop = collect(True), collect(False)
    assert bulk and bulk == loop


def test_fixed_size_dist_draws_nothing():
    ctx = Context.create(seed=3)
    sizes = []
    gen = WorkloadGenerator(
        ctx, WorkloadConfig(rate=50.0, size_dist="fixed",
                            size_mean=32 * MIB),
        lambda t, s, n: sizes.append(s))
    before = ctx.rng.stream("service.sizes").bit_generator.state
    gen.start()
    ctx.sim.run(until=1.0)
    after = ctx.rng.stream("service.sizes").bit_generator.state
    assert sizes and all(s == 32 * MIB for s in sizes)
    assert before == after  # the sizes stream was never consumed
    with pytest.raises(ValueError, match="burst"):
        WorkloadConfig(burst=0)
