"""Tests for the GridFTP baseline model."""

import pytest

from repro.apps.gridftp import GridFtp, _harmonic
from repro.core.system import EndToEndSystem
from repro.core.tuning import TuningPolicy
from repro.util.units import GB


def system(seed=1, tuning=None):
    return EndToEndSystem.lan_testbed(
        tuning or TuningPolicy.numa_bound(), seed=seed, lun_size=2 * GB
    )


def test_harmonic_helper():
    assert _harmonic(2.0, 2.0) == pytest.approx(1.0)
    assert _harmonic(None, 4.0) == pytest.approx(4.0)
    assert _harmonic(float("inf"), 4.0) == pytest.approx(4.0)
    assert _harmonic(0.0, 4.0) == 0.0
    assert _harmonic() == float("inf")


def test_gridftp_matches_paper_anchor():
    res = system().run_gridftp_transfer(duration=20.0)
    assert res.goodput_gbps == pytest.approx(29.0, rel=0.15)


def test_gridftp_sys_cpu_dominates():
    """Fig. 10: GridFTP's CPU is mostly kernel/copy (sys)."""
    res = system(seed=2).run_gridftp_transfer(duration=15.0)
    assert res.sender_cpu.sys > res.sender_cpu.usr
    assert res.receiver_cpu.sys > res.receiver_cpu.usr


def test_gridftp_scales_with_processes_then_saturates():
    rates = {}
    for i, n in enumerate((1, 6, 12)):
        res = system(seed=10 + i).run_gridftp_transfer(duration=15.0,
                                                       processes=n)
        rates[n] = res.goodput
    assert rates[6] > 4 * rates[1]  # near-linear at first
    assert rates[12] < rates[6] * 1.8  # diminishing returns


def test_gridftp_single_thread_far_below_rftp():
    """The headline 3x gap (paper: 91 vs 29 Gbps)."""
    sys1 = system(seed=20)
    rftp = sys1.run_rftp_transfer(duration=15.0)
    sys2 = system(seed=21)
    grid = sys2.run_gridftp_transfer(duration=15.0)
    assert rftp.goodput > 2.4 * grid.goodput


def test_gridftp_pays_pagecache_copy():
    res = system(seed=3).run_gridftp_transfer(duration=10.0)
    assert res.sender_cpu.get("copy") > 0  # buffered I/O + TCP copies


def test_gridftp_validation():
    sys_ = system(seed=4)
    with pytest.raises(ValueError):
        GridFtp(sys_.ctx, sys_.host_a, sys_.host_b,
                source_fs=sys_.fs_a, sink_fs=sys_.fs_b, processes=0)


def test_gridftp_uncabled_host_rejected():
    from repro.hw import Machine
    from repro.sim.context import Context

    ctx = Context.create()
    a = Machine(ctx, "a")
    b = Machine(ctx, "b")
    g = GridFtp(ctx, a, b, source_fs=[], sink_fs=[], processes=1)
    with pytest.raises(ValueError):
        g.start()
