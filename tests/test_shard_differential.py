"""Sharded vs single-process reference: the 1e-6 differential suite.

The boundary exchange's fixed point is the flow-level max-min fair
allocation over the cut links — the allocation the unsharded kernel
computes directly.  Every scenario here runs both paths at one seed
and holds per-cell, per-flow byte ledgers to 1e-6.
"""

import pytest

from repro.core.experiments.fleet_legs import diff_leg
from repro.service.fabric import FabricSpec, run_fabric
from repro.sim.shard import BoundaryLink, run_sharded, run_unsharded

REL = 1e-6


def _both(**kw):
    sharded = run_sharded(**kw)
    unsharded = run_unsharded(**{
        k: v for k, v in kw.items()
        if k in ("target", "n_cells", "boundaries", "horizon", "epoch_dt",
                 "params", "seed", "cal")})
    return sharded, unsharded


def _assert_cells_match(sharded, unsharded, keys=("local_bytes",
                                                  "cross_bytes")):
    for cs, cu in zip(sharded["cells"], unsharded["cells"]):
        for key in keys:
            assert cs[key] == pytest.approx(cu[key], rel=REL), (
                f"cell {cu.get('cell', cu.get('pod'))} diverges on {key}")


def _demo(**over):
    kw = dict(
        target="repro.sim.shard:demo_cell",
        n_cells=3,
        boundaries=[BoundaryLink("wan0", 300e6)],
        horizon=6.0, epoch_dt=1.0,
        params={"n_local": 2, "local_rate": 50e6},
        seed=11,
    )
    kw.update(over)
    return kw


def test_uncapped_cross_flows_split_the_link_evenly():
    sharded, unsharded = _both(**_demo(params={"n_local": 1,
                                               "cross_rate": None}))
    _assert_cells_match(sharded, unsharded)
    # 3 hungry flows on a 300 MB/s link for 6 s: 600 MB each.
    for cell in sharded["cells"]:
        assert cell["cross_bytes"] == pytest.approx(6e8, rel=REL)


def test_capped_cross_flows_below_the_link_run_at_cap():
    sharded, unsharded = _both(**_demo(params={"n_local": 1,
                                               "cross_rate": 60e6}))
    _assert_cells_match(sharded, unsharded)
    assert sharded["exchange"]["early_accept"]


def test_oversubscribed_capped_flows_share_max_min():
    sharded, unsharded = _both(**_demo(params={"n_local": 1,
                                               "cross_rate": 150e6}))
    _assert_cells_match(sharded, unsharded)
    assert not sharded["exchange"]["early_accept"]


def test_asymmetric_caps_pin_some_flows_and_feed_the_hungry():
    # Caps 90/112.5/135 MB/s on a 300 MB/s link: the smallest cap is
    # below the equal share, so its flow is pinned and the slack goes
    # to the others — the case the hungry-vs-pinned flag exists for.
    sharded, unsharded = _both(**_demo(
        params={"n_local": 1, "cross_rate": 90e6, "cross_skew": 0.25}))
    _assert_cells_match(sharded, unsharded)
    cross = [c["cross_bytes"] for c in sharded["cells"]]
    assert cross[0] == pytest.approx(90e6 * 6.0, rel=REL)
    assert cross[1] > cross[0]


def test_local_traffic_never_crosses_the_cut():
    sharded, unsharded = _both(**_demo(params={"n_local": 3,
                                               "cross_rate": 20e6,
                                               "local_rate": 80e6}))
    _assert_cells_match(sharded, unsharded)
    # 3 local flows share the cell's 80 MB/s local resource evenly,
    # untouched by the exchange's arbitration of the 20 MB/s cross flow.
    for cell in sharded["cells"]:
        assert cell["local_bytes"] == pytest.approx(
            [80e6 / 3.0 * 6.0] * 3, rel=REL)


def test_multi_boundary_cells_settle_every_cut_link():
    kw = _demo(
        boundaries=[BoundaryLink("wan0", 120e6), BoundaryLink("wan1", 1e9)],
        params={"n_local": 1, "cross_rate": None})
    sharded, unsharded = _both(**kw)
    _assert_cells_match(sharded, unsharded)
    assert sharded["exchange"]["boundaries"]["wan0"]["utilization"] == (
        pytest.approx(1.0, rel=REL))


def test_fabric_static_elephants_match_reference():
    spec = FabricSpec(
        n_pods=4, hosts_per_pod=2, n_wan_links=2, wan_gbps=10.0,
        elephants_per_pod=2, elephant_gbps=6.0, elephant_skew=0.2,
        rate_per_host=0.0, serve_s=4.0, horizon_s=4.0, qp_mode="off")
    sharded = run_fabric(spec, seed=13)
    unsharded = run_fabric(spec, seed=13, sharded=False)
    _assert_cells_match(sharded, unsharded,
                        keys=("elephant_bytes", "wan_bytes"))
    for name, row in sharded["exchange"]["boundaries"].items():
        assert row["bytes"] == pytest.approx(
            unsharded["exchange"]["boundaries"][name]["bytes"], rel=REL)


def test_fabric_churn_completes_identical_jobs():
    out = diff_leg(seed=91, cal=None)
    assert out["static_max_rel_err"] <= REL
    assert (out["churn_completed_sharded"]
            == out["churn_completed_reference"] > 0)
