"""Tests for iSCSI task management, NOP keepalive and sense data."""

import numpy as np
import pytest

from repro.hw import backend_lan_host, frontend_lan_host
from repro.kernel import NumaPolicy
from repro.net.topology import wire_san
from repro.sim.context import Context
from repro.storage import IoRequest, IserInitiator, IserTarget
from repro.storage.initiator import TaskAborted
from repro.storage.iscsi import (
    NopInPdu,
    NopOutPdu,
    ScsiResponsePdu,
    TaskManagementRequestPdu,
    TaskManagementResponsePdu,
    TmFunction,
    decode_pdu,
)
from repro.util.units import MIB


def build_san(seed=31):
    c = Context.create(seed=seed)
    front = frontend_lan_host(c, "front", with_ib=True)
    back = backend_lan_host(c, "back")
    wire_san(c, front, back)
    target = IserTarget(c, back, tuning="numa", n_links=2)
    for _ in range(2):
        target.create_lun(64 * MIB, store_data=True)
    initiator = IserInitiator(c, front, target)
    c.sim.run(until=initiator.login_all())
    return c, front, target, initiator


# --- PDU round trips ---------------------------------------------------------------


def test_tm_request_round_trip():
    req = TaskManagementRequestPdu(function=TmFunction.ABORT_TASK,
                                   task_tag=9, referenced_task_tag=7, lun=3)
    back = decode_pdu(req.encode())
    assert back == req


def test_tm_response_round_trip():
    resp = TaskManagementResponsePdu(task_tag=9, response=1)
    assert decode_pdu(resp.encode()) == resp


def test_lun_reset_function_encoded():
    req = TaskManagementRequestPdu(function=TmFunction.LUN_RESET,
                                   task_tag=1, lun=5)
    back = decode_pdu(req.encode())
    assert back.function is TmFunction.LUN_RESET and back.lun == 5


def test_nop_round_trips():
    assert decode_pdu(NopOutPdu(task_tag=3).encode()) == NopOutPdu(task_tag=3)
    assert decode_pdu(NopInPdu(task_tag=3).encode()) == NopInPdu(task_tag=3)


def test_response_carries_sense():
    resp = ScsiResponsePdu(task_tag=2, status=0x02, sense_key=0x05, asc=0x21)
    back = decode_pdu(resp.encode())
    assert back.sense_key == 0x05 and back.asc == 0x21


# --- session behaviour -----------------------------------------------------------------


def test_ping_measures_rtt():
    c, front, target, initiator = build_san()
    session = initiator.sessions[0]
    rtt = c.sim.run(until=session.ping())
    assert rtt == pytest.approx(session.link.rtt + 2 * c.cal.rdma_op_latency,
                                rel=0.01)


def test_abort_inflight_task():
    c, front, target, initiator = build_san(seed=32)
    session = initiator.sessions[0]
    lun = target.luns[0]
    app_mr = session.pd.register(
        __import__("repro.kernel.pages", fromlist=["place_region"]).place_region(
            32 * MIB, NumaPolicy.bind(0), 2),
        data=np.zeros(32 * MIB, dtype=np.uint8),
    )
    req = IoRequest(True, offset=0, length=32 * MIB, data=None)
    done, tag = session.execute_io_tagged(lun, req, app_mr)
    # abort immediately, well before the 32 MiB transfer can finish
    abort_done = session.abort_task(tag)
    response = c.sim.run(until=abort_done)
    assert response == 0  # function complete
    with pytest.raises(TaskAborted):
        c.sim.run(until=done)


def test_abort_unknown_task_reports_missing():
    c, front, target, initiator = build_san(seed=33)
    session = initiator.sessions[0]
    response = c.sim.run(until=session.abort_task(9999))
    assert response == 1  # task does not exist


def test_abort_after_completion_reports_missing():
    c, front, target, initiator = build_san(seed=34)
    session = initiator.sessions[0]
    lun = target.luns[0]
    from repro.kernel.pages import place_region

    app_mr = session.pd.register(
        place_region(1 * MIB, NumaPolicy.bind(0), 2),
        data=np.zeros(1 * MIB, dtype=np.uint8),
    )
    req = IoRequest(False, offset=0, length=1 * MIB)
    done, tag = session.execute_io_tagged(lun, req, app_mr)
    status = c.sim.run(until=done)
    assert status == 0
    response = c.sim.run(until=session.abort_task(tag))
    assert response == 1


def test_completed_io_still_works_after_abort_of_other():
    """Aborting one task doesn't poison the session."""
    c, front, target, initiator = build_san(seed=35)
    session = initiator.sessions[0]
    lun = target.luns[0]
    from repro.kernel.pages import place_region

    big_mr = session.pd.register(
        place_region(32 * MIB, NumaPolicy.bind(0), 2),
        data=np.zeros(32 * MIB, dtype=np.uint8))
    done1, tag1 = session.execute_io_tagged(
        lun, IoRequest(True, offset=0, length=32 * MIB), big_mr)
    c.sim.run(until=session.abort_task(tag1))
    with pytest.raises(TaskAborted):
        c.sim.run(until=done1)

    small_mr = session.pd.register(
        place_region(1 * MIB, NumaPolicy.bind(0), 2),
        data=np.full(1 * MIB, 9, dtype=np.uint8))
    done2, _ = session.execute_io_tagged(
        lun, IoRequest(True, offset=0, length=1 * MIB), small_mr)
    assert c.sim.run(until=done2) == 0
    assert (target.luns[0].data[: 1 * MIB] == 9).all()
