"""Tests for the filesystem layer: VFS, page cache, XFS/ext4."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs import Ext4FileSystem, O_DIRECT, O_RDONLY, O_RDWR, PageCache, XfsFileSystem
from repro.hw import Machine
from repro.kernel import NumaPolicy, SimProcess, place_region
from repro.kernel.pages import PAGE_SIZE
from repro.sim.context import Context
from repro.storage import RamDisk
from repro.util.units import MIB


def setup(fs_cls=XfsFileSystem, size=1 << 30, store_data=False):
    c = Context.create(seed=17)
    m = Machine(c, "m", pcie_sockets=(0,))
    placement = place_region(size, NumaPolicy.bind(0), m.n_nodes)
    disk = RamDisk(c, "rd", placement, store_data=store_data)
    fs = fs_cls(c, disk)
    proc = SimProcess(m, "app", cpu_policy=NumaPolicy.bind(0))
    return c, m, fs, proc.spawn_thread()


# --- page cache -------------------------------------------------------------------


def test_pagecache_hit_after_miss():
    c = Context.create()
    pc = PageCache(c, 1 << 20)
    assert pc.access(0) is False
    assert pc.access(0) is True
    assert pc.stats == {"hits": 1, "misses": 1, "evictions": 0, "writebacks": 0}


def test_pagecache_lru_eviction():
    c = Context.create()
    pc = PageCache(c, 2 * PAGE_SIZE)
    pc.access(0)
    pc.access(1)
    pc.access(2)  # evicts 0
    assert pc.access(1) is True  # still cached
    assert pc.access(0) is False  # was evicted
    assert pc.stats["evictions"] >= 1


def test_pagecache_dirty_writeback_on_eviction():
    c = Context.create()
    pc = PageCache(c, 1 * PAGE_SIZE)
    pc.access(0, dirty=True)
    pc.access(1)  # evicts dirty page 0
    assert pc.stats["writebacks"] == 1


def test_pagecache_access_range():
    c = Context.create()
    pc = PageCache(c, 1 << 20)
    out = pc.access_range(0, 10 * PAGE_SIZE)
    assert out == {"hits": 0, "misses": 10}
    out = pc.access_range(0, 10 * PAGE_SIZE)
    assert out == {"hits": 10, "misses": 0}
    assert pc.hit_rate() == 0.5


def test_pagecache_drop():
    c = Context.create()
    pc = PageCache(c, 1 << 20)
    pc.access(0)
    pc.drop()
    assert pc.access(0) is False


def test_streaming_items_direct_is_free():
    c, m, fs, t = setup()
    assert fs.cache.streaming_items(t, is_write=True, direct=True) == []
    items = fs.cache.streaming_items(t, is_write=True, direct=False)
    assert len(items) == 1
    assert items[0].cpu_per_byte > 0


# --- VFS namespace ------------------------------------------------------------------


def test_create_open_read_write_round_trip():
    c, m, fs, t = setup(store_data=True)
    fs.create("data.bin", 4 * MIB)
    payload = (np.arange(1 * MIB, dtype=np.int64) % 256).astype(np.uint8)

    fh = fs.open("data.bin", O_RDWR)
    fh.seek(MIB)
    c.sim.run(until=fh.write(payload, thread=t))

    fh2 = fs.open("data.bin", O_RDONLY)
    fh2.seek(MIB)
    out = np.zeros(1 * MIB, dtype=np.uint8)
    c.sim.run(until=fh2.read(1 * MIB, data=out, thread=t))
    assert (out == payload).all()


def test_write_to_readonly_handle_rejected():
    c, m, fs, t = setup()
    fs.create("f", MIB)
    fh = fs.open("f", O_RDONLY)
    with pytest.raises(PermissionError):
        fh.write(1024)


def test_read_past_eof_rejected():
    c, m, fs, t = setup()
    fs.create("f", MIB)
    fh = fs.open("f")
    fh.seek(MIB - 100)
    with pytest.raises(ValueError):
        fh.read(200)


def test_no_space_rejected():
    c, m, fs, t = setup(size=4 * MIB)
    fs.create("a", 3 * MIB)
    with pytest.raises(OSError):
        fs.create("b", 2 * MIB)


def test_duplicate_and_missing_files():
    c, m, fs, t = setup()
    fs.create("a", MIB)
    with pytest.raises(FileExistsError):
        fs.create("a", MIB)
    with pytest.raises(FileNotFoundError):
        fs.open("missing")
    assert fs.exists("a") and not fs.exists("b")
    assert fs.listdir() == ["a"]
    assert fs.stat_size("a") == MIB


def test_buffered_io_populates_cache():
    c, m, fs, t = setup(store_data=True)
    fs.create("f", 4 * MIB)
    fh = fs.open("f", O_RDWR)
    c.sim.run(until=fh.write(1 * MIB, thread=t))
    assert fs.cache.stats["misses"] > 0


def test_direct_io_bypasses_cache():
    c, m, fs, t = setup(store_data=True)
    fs.create("f", 4 * MIB)
    fh = fs.open("f", O_RDWR | O_DIRECT)
    c.sim.run(until=fh.write(1 * MIB, thread=t))
    assert fs.cache.stats["misses"] == 0 and fs.cache.stats["hits"] == 0


# --- streaming cost model -----------------------------------------------------------


def test_buffered_stream_has_lower_cap_than_direct():
    c, m, fs, t = setup()
    buffered = fs.streaming_spec(True, t, 4 * MIB, direct=False)
    direct = fs.streaming_spec(True, t, 4 * MIB, direct=True)
    assert buffered.cap < direct.cap


def test_xfs_scales_past_ext4_for_buffered_io():
    c, m, fs_x, t = setup(XfsFileSystem)
    c2, m2, fs_e, t2 = setup(Ext4FileSystem)
    n = 8
    x = fs_x.streaming_spec(True, t, 4 * MIB, direct=False, n_streams=n)
    e = fs_e.streaming_spec(True, t2, 4 * MIB, direct=False, n_streams=n)
    # with 8 buffered streams ext4 (concurrency 2) serializes on the
    # journal; XFS (8 AGs) does not
    assert e.cap < x.cap


def test_direct_io_bypasses_journal_serialization():
    c, m, fs_e, t = setup(Ext4FileSystem)
    few = fs_e.streaming_spec(True, t, 4 * MIB, direct=True, n_streams=1)
    many = fs_e.streaming_spec(True, t, 4 * MIB, direct=True, n_streams=8)
    # preallocated O_DIRECT streams never take the journal lock
    assert many.cap == pytest.approx(few.cap)


def test_single_stream_comparable_across_fs():
    """§4.3: raw vs ext4 vs XFS throughput is comparable at low parallelism."""
    c, m, fs_x, t = setup(XfsFileSystem)
    c2, m2, fs_e, t2 = setup(Ext4FileSystem)
    x = fs_x.streaming_spec(False, t, 4 * MIB, direct=True)
    e = fs_e.streaming_spec(False, t2, 4 * MIB, direct=True)
    assert e.cap == pytest.approx(x.cap, rel=0.02)


# --- extent mapping property ----------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=64),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_extent_mapping_covers_requested_range(n_mib, data):
    c, m, fs, t = setup(size=256 * MIB)
    size = n_mib * MIB
    inode = fs.create("f", size)
    offset = data.draw(st.integers(min_value=0, max_value=size - 1))
    length = data.draw(st.integers(min_value=1, max_value=size - offset))
    runs = inode.map_range(offset, length)
    assert sum(run_len for _, run_len in runs) == length
    # contiguous file: single run starting at the right device offset
    assert runs[0][0] == inode.extents[0].device_offset + offset
