"""Unit + property tests for the fluid max-min fair scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FluidFlow, FluidResource, FluidScheduler, Simulator
from repro.sim.engine import SimulationError


def make() -> tuple[Simulator, FluidScheduler]:
    sim = Simulator()
    return sim, FluidScheduler(sim)


# --- basic behaviour -----------------------------------------------------------


def test_single_flow_full_capacity():
    sim, sched = make()
    link = FluidResource(sched, 100.0, "link")
    flow = FluidFlow([(link, 1.0)], size=1000.0, name="f")
    done = sched.start(flow)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)
    assert flow.transferred == pytest.approx(1000.0)


def test_two_flows_share_equally():
    sim, sched = make()
    link = FluidResource(sched, 100.0, "link")
    f1 = FluidFlow([(link, 1.0)], size=1000.0, name="f1")
    f2 = FluidFlow([(link, 1.0)], size=1000.0, name="f2")
    sched.start(f1)
    d2 = sched.start(f2)
    sim.run(until=d2)
    # both at 50 B/s -> 20 s
    assert sim.now == pytest.approx(20.0)


def test_short_flow_releases_capacity():
    sim, sched = make()
    link = FluidResource(sched, 100.0, "link")
    long = FluidFlow([(link, 1.0)], size=1500.0, name="long")
    short = FluidFlow([(link, 1.0)], size=500.0, name="short")
    d_long = sched.start(long)
    sched.start(short)
    sim.run(until=d_long)
    # share 50/50 until short finishes at t=10 (500B at 50B/s);
    # long then has 1000 left at 100B/s -> finishes at t=20.
    assert sim.now == pytest.approx(20.0)


def test_cap_limits_rate():
    sim, sched = make()
    link = FluidResource(sched, 100.0, "link")
    f = FluidFlow([(link, 1.0)], size=100.0, cap=10.0, name="capped")
    done = sched.start(f)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)


def test_capped_flow_leaves_room_for_others():
    sim, sched = make()
    link = FluidResource(sched, 100.0, "link")
    capped = FluidFlow([(link, 1.0)], size=1e9, cap=10.0, name="capped")
    free = FluidFlow([(link, 1.0)], size=900.0, name="free")
    sched.start(capped)
    d = sched.start(free)
    sim.run(until=d)
    # free gets 90 B/s -> 10 s
    assert sim.now == pytest.approx(10.0)


def test_weight_two_charges_double():
    sim, sched = make()
    mem = FluidResource(sched, 100.0, "mem")
    copy = FluidFlow([(mem, 2.0)], size=500.0, name="copy")
    done = sched.start(copy)
    sim.run(until=done)
    # payload rate = 100/2 = 50 B/s -> 10 s
    assert sim.now == pytest.approx(10.0)


def test_bottleneck_is_min_along_path():
    sim, sched = make()
    fast = FluidResource(sched, 1000.0, "fast")
    slow = FluidResource(sched, 10.0, "slow")
    f = FluidFlow([(fast, 1.0), (slow, 1.0)], size=100.0, name="path")
    done = sched.start(f)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)


def test_duplicate_resource_in_path_accumulates_weight():
    sim, sched = make()
    mem = FluidResource(sched, 100.0, "mem")
    f = FluidFlow([(mem, 1.0), (mem, 1.0)], size=500.0, name="rw")
    done = sched.start(f)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)


def test_open_ended_flow_metered_and_stopped():
    sim, sched = make()
    link = FluidResource(sched, 100.0, "link")
    f = FluidFlow([(link, 1.0)], size=None, name="open")
    sched.start(f)
    sim.run(until=5.0)
    sched.settle()
    assert f.transferred == pytest.approx(500.0)
    moved = sched.stop(f)
    assert moved == pytest.approx(500.0)
    assert f.done.triggered


def test_open_flow_requires_bound():
    sim, sched = make()
    with pytest.raises(ValueError, match="unbounded"):
        FluidFlow([], size=None, name="nothing")


def test_open_flow_with_cap_only_is_fine():
    sim, sched = make()
    f = FluidFlow([], size=100.0, cap=10.0, name="cap-only")
    done = sched.start(f)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)


def test_capacity_change_rebalances():
    sim, sched = make()
    link = FluidResource(sched, 100.0, "link")
    f = FluidFlow([(link, 1.0)], size=1000.0, name="f")
    done = sched.start(f)

    def throttle():
        yield sim.timeout(5.0)
        link.set_capacity(50.0)  # halve after 500 B transferred

    sim.process(throttle())
    sim.run(until=done)
    # 500 B at 100 B/s (5 s) + 500 B at 50 B/s (10 s)
    assert sim.now == pytest.approx(15.0)


def test_set_cap_midflight():
    sim, sched = make()
    link = FluidResource(sched, 100.0, "link")
    f = FluidFlow([(link, 1.0)], size=1000.0, name="f")
    done = sched.start(f)

    def tighten():
        yield sim.timeout(5.0)
        sched.set_cap(f, 25.0)

    sim.process(tighten())
    sim.run(until=done)
    # 500 B at 100 + 500 B at 25 -> 5 + 20 = 25 s
    assert sim.now == pytest.approx(25.0)


def test_charges_accumulate_per_byte():
    class Account:
        def __init__(self):
            self.total = 0.0

        def add(self, x):
            self.total += x

    sim, sched = make()
    link = FluidResource(sched, 100.0, "link")
    acct = Account()
    f = FluidFlow([(link, 1.0)], size=1000.0, charges=[(acct, 0.001)], name="f")
    done = sched.start(f)
    sim.run(until=done)
    assert acct.total == pytest.approx(1.0)  # 1000 B * 0.001 s/B


def test_zero_capacity_resource_stalls_flow():
    sim, sched = make()
    dead = FluidResource(sched, 0.0, "dead")
    f = FluidFlow([(dead, 1.0)], size=100.0, name="stalled")
    sched.start(f)
    sim.run(until=100.0)
    sched.settle()
    assert f.transferred == 0.0
    assert not f.done.triggered


def test_flow_restart_rejected():
    sim, sched = make()
    link = FluidResource(sched, 100.0, "link")
    f = FluidFlow([(link, 1.0)], size=10.0, name="f")
    sched.start(f)
    with pytest.raises(SimulationError):
        sched.start(f)


def test_stop_inactive_flow_rejected():
    sim, sched = make()
    link = FluidResource(sched, 100.0, "link")
    f = FluidFlow([(link, 1.0)], size=10.0, name="f")
    with pytest.raises(SimulationError):
        sched.stop(f)


def test_flow_validation():
    sim, sched = make()
    link = FluidResource(sched, 100.0, "link")
    with pytest.raises(ValueError):
        FluidFlow([(link, 0.0)], size=10.0)
    with pytest.raises(ValueError):
        FluidFlow([(link, 1.0)], size=-5.0)
    with pytest.raises(ValueError):
        FluidFlow([(link, 1.0)], size=10.0, cap=0.0)


def test_resource_validation():
    sim, sched = make()
    with pytest.raises(ValueError):
        FluidResource(sched, -1.0)


def test_utilization_reporting():
    sim, sched = make()
    link = FluidResource(sched, 100.0, "link")
    f = FluidFlow([(link, 1.0)], size=1e6, cap=40.0, name="f")
    sched.start(f)
    sim.run(until=1.0)
    assert link.load == pytest.approx(40.0)
    assert link.utilization == pytest.approx(0.4)


def test_three_stage_pipeline_convoy():
    """Two flows overlapping on one of three resources."""
    sim, sched = make()
    a = FluidResource(sched, 100.0, "a")
    b = FluidResource(sched, 100.0, "b")
    shared = FluidResource(sched, 100.0, "shared")
    f1 = FluidFlow([(a, 1.0), (shared, 1.0)], size=1000.0, name="f1")
    f2 = FluidFlow([(b, 1.0), (shared, 1.0)], size=1000.0, name="f2")
    d1 = sched.start(f1)
    sched.start(f2)
    sim.run(until=d1)
    assert sim.now == pytest.approx(20.0)


# --- max-min property tests -----------------------------------------------------


@st.composite
def allocation_problem(draw):
    n_res = draw(st.integers(min_value=1, max_value=4))
    caps = [draw(st.floats(min_value=1.0, max_value=1000.0)) for _ in range(n_res)]
    n_flows = draw(st.integers(min_value=1, max_value=6))
    flows = []
    for _ in range(n_flows):
        n_used = draw(st.integers(min_value=1, max_value=n_res))
        used = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_res - 1),
                min_size=n_used,
                max_size=n_used,
                unique=True,
            )
        )
        weights = [
            draw(st.floats(min_value=0.5, max_value=3.0)) for _ in range(len(used))
        ]
        cap = draw(
            st.one_of(st.none(), st.floats(min_value=1.0, max_value=500.0))
        )
        flows.append((list(zip(used, weights)), cap))
    return caps, flows


@given(allocation_problem())
@settings(max_examples=120, deadline=None)
def test_allocation_is_feasible_and_maxmin(problem):
    caps, flow_specs = problem
    sim = Simulator()
    sched = FluidScheduler(sim)
    resources = [FluidResource(sched, c, f"r{i}") for i, c in enumerate(caps)]
    flows = []
    for i, (path_idx, cap) in enumerate(flow_specs):
        path = [(resources[j], w) for j, w in path_idx]
        flows.append(FluidFlow(path, size=1e12, cap=cap, name=f"f{i}"))
    for f in flows:
        sched.start(f)

    # Feasibility: no resource over capacity.
    for r in resources:
        assert r.load <= r.capacity * (1 + 1e-6)

    # Cap respected.
    for f in flows:
        if f.cap is not None:
            assert f.rate <= f.cap * (1 + 1e-6)

    # Pareto/max-min: every flow is blocked by its cap or by a saturated
    # resource on its path (no flow can be unilaterally increased).
    for f in flows:
        at_cap = f.cap is not None and f.rate >= f.cap * (1 - 1e-6)
        on_saturated = any(
            r.load >= r.capacity * (1 - 1e-6) for r in f._weights
        )
        assert at_cap or on_saturated, f"{f} is not blocked by anything"

    # Max-min fairness: if flow A's rate < flow B's rate and they share a
    # resource that is A's bottleneck, then that resource must be saturated
    # and B must not be increasable there either -- implied by the water
    # filling construction; we spot-check pairwise envy on shared resources:
    for fa in flows:
        for fb in flows:
            if fa is fb or fa.rate >= fb.rate - 1e-9:
                continue
            shared = set(fa._weights) & set(fb._weights)
            # if fa is strictly slower and not at its cap, some shared or
            # private resource must be saturated for fa
            if shared and (fa.cap is None or fa.rate < fa.cap * (1 - 1e-6)):
                assert any(
                    r.load >= r.capacity * (1 - 1e-6) for r in fa._weights
                )


@given(
    st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=8),
    st.floats(min_value=1.0, max_value=1e6),
)
@settings(max_examples=60, deadline=None)
def test_single_resource_equal_split(sizes, capacity):
    """N uncapped equal flows on one resource each get capacity/N."""
    sim = Simulator()
    sched = FluidScheduler(sim)
    link = FluidResource(sched, capacity, "link")
    flows = [
        FluidFlow([(link, 1.0)], size=s * 1e6, name=f"f{i}")
        for i, s in enumerate(sizes)
    ]
    for f in flows:
        sched.start(f)
    expected = capacity / len(flows)
    for f in flows:
        assert f.rate == pytest.approx(expected, rel=1e-6)


@given(st.integers(min_value=1, max_value=6), st.floats(min_value=10.0, max_value=1e4))
@settings(max_examples=40, deadline=None)
def test_conservation_of_bytes(n_flows, capacity):
    """Total bytes delivered equals sum of flow sizes, regardless of sharing."""
    sim = Simulator()
    sched = FluidScheduler(sim)
    link = FluidResource(sched, capacity, "link")
    sizes = [(i + 1) * 100.0 for i in range(n_flows)]
    flows = [
        FluidFlow([(link, 1.0)], size=s, name=f"f{i}") for i, s in enumerate(sizes)
    ]
    events = [sched.start(f) for f in flows]
    for ev in events:
        sim.run(until=ev)
    total = sum(f.transferred for f in flows)
    assert total == pytest.approx(sum(sizes), rel=1e-9)
    # serial lower bound on completion: all bytes through one pipe
    assert sim.now >= sum(sizes) / capacity * (1 - 1e-9)
