"""Queue depth affects small-block throughput (the latency-bandwidth law)."""

import pytest

from repro.apps.fio import FioJob, run_fio
from repro.hw import backend_lan_host, frontend_lan_host
from repro.net.topology import wire_san
from repro.sim.context import Context
from repro.storage import IserInitiator, IserTarget
from repro.util.units import GB, KIB, MIB


def build(seed):
    ctx = Context.create(seed=seed)
    front = frontend_lan_host(ctx, "front", with_ib=True)
    back = backend_lan_host(ctx, "back")
    wire_san(ctx, front, back)
    target = IserTarget(ctx, back, tuning="numa", n_links=2)
    for _ in range(6):
        target.create_lun(GB)
    initiator = IserInitiator(ctx, front, target)
    ctx.sim.run(until=initiator.login_all())
    devices = [initiator.devices[i] for i in sorted(initiator.devices)]
    return ctx, front, devices


def test_higher_queue_depth_lifts_small_blocks():
    """At 64 KiB, QD=1 is latency-bound; QD=16 approaches the wire."""
    rates = {}
    for qd in (1, 16):
        ctx, front, devices = build(seed=101 + qd)
        res = run_fio(ctx, front, devices,
                      FioJob(rw="read", block_size=64 * KIB, numjobs=1,
                             queue_depth=qd, runtime=10.0))
        rates[qd] = res.bandwidth
    assert rates[16] > 3 * rates[1]


def test_queue_depth_irrelevant_for_large_blocks():
    """At 16 MiB the per-command latency is already amortized."""
    rates = {}
    for qd in (1, 16):
        ctx, front, devices = build(seed=111 + qd)
        res = run_fio(ctx, front, devices,
                      FioJob(rw="read", block_size=16 * MIB, numjobs=4,
                             queue_depth=qd, runtime=10.0))
        rates[qd] = res.bandwidth
    assert rates[16] == pytest.approx(rates[1], rel=0.05)


def test_qd1_small_block_rate_matches_latency_model():
    """QD=1 rate = block / round-trip-latency per flow (Little's law)."""
    from repro.storage.iser import io_round_trip_latency

    ctx, front, devices = build(seed=121)
    bs = 64 * KIB
    res = run_fio(ctx, front, devices,
                  FioJob(rw="read", block_size=bs, numjobs=1,
                         queue_depth=1, runtime=10.0))
    link = devices[0].session.link
    fixed = io_round_trip_latency(ctx, link, is_write=False)
    per_flow = res.bandwidth / res.n_flows
    # cap model: qd * bs / fixed (resources far from binding at this size)
    assert per_flow == pytest.approx(bs / fixed, rel=0.05)
