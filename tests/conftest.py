"""Shared pytest fixtures.

The service and fault stats classes keep process-global ``total_*``
class attributes (report-footer telemetry).  Left alone, every test
that runs a broker or an injector would bleed its counts into the next
test's view of the totals, so any assertion on ``process_totals()``
would depend on test ordering.  The autouse fixture below zeroes the
class-level totals before each test; instance counters are unaffected.
"""

from __future__ import annotations

import pytest

from repro.faults.injector import FaultStats
from repro.service.broker import ServiceStats


def _reset_process_totals(cls) -> None:
    """Zero every ``total_*`` class attribute back to its declared type."""
    for name, value in list(vars(cls).items()):
        if name.startswith("total_"):
            setattr(cls, name, 0.0 if isinstance(value, float) else 0)


@pytest.fixture(autouse=True)
def fresh_process_totals():
    """Isolate each test from process-global stats accumulation."""
    _reset_process_totals(ServiceStats)
    _reset_process_totals(FaultStats)
    yield
