"""GangFluidProgram vs the event-kernel FluidScheduler, per scenario.

The batched solver's contract: for every scenario, rates, transferred
bytes, completion times and charge totals must agree with an equivalent
single-scenario :class:`FluidScheduler` run — the max-min fair
allocation is unique, so agreement is exact up to float noise — and
scenarios whose completion *order* diverges from the pilot must be
reported as defected (their numbers are still exact; only event-coupled
callers need the flag).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.kernel.accounting import CpuAccounting
from repro.sim import FluidFlow, FluidResource, FluidScheduler, Simulator
from repro.sim.engine import SimulationError
from repro.sim.fluid import GangFluidProgram

REL = 1e-9


def _scalar_run(caps, flows, duration):
    """One scenario on the event kernel; observables for comparison."""
    sim = Simulator()
    sched = FluidScheduler(sim)
    resources = [FluidResource(sched, c, f"r{i}") for i, c in enumerate(caps)]
    ledger = CpuAccounting("gangtest")
    objs = []
    for i, (path, size, cap, charges) in enumerate(flows):
        objs.append(FluidFlow(
            [(resources[r], w) for r, w in path], size=size, cap=cap,
            charges=[(ledger.account(key), pb) for key, pb in charges],
            name=f"f{i}"))
        sched.start(objs[-1])
    sim.run(until=duration)
    sched.settle()
    completed = [f.size is not None and not f._active for f in objs]
    finished = [f.finished_at if done else None
                for f, done in zip(objs, completed)]
    transferred = [f.transferred for f in objs]
    for f in objs:
        if f._active:
            sched.stop(f)
    return transferred, finished, ledger.total_seconds


def _agree(a, b, rel=REL):
    if a is None or b is None:
        return a is b
    return abs(a - b) <= rel * max(1.0, abs(a), abs(b))


def _random_grid(rng, n_scen, n_res, n_flows):
    base_caps = [rng.uniform(20.0, 200.0) for _ in range(n_res)]
    scale = [0.5 + 0.3 * s for s in range(n_scen)]
    flows = []
    for _ in range(n_flows):
        n_path = rng.randint(1, min(3, n_res))
        path = [(r, rng.uniform(0.5, 2.0))
                for r in rng.sample(range(n_res), n_path)]
        size = rng.uniform(100.0, 3000.0) if rng.random() < 0.7 else None
        cap = rng.uniform(5.0, 120.0) if rng.random() < 0.4 else None
        charges = [("acct", rng.uniform(1e-4, 1e-3))]
        flows.append((path, size, cap, charges))
    return base_caps, scale, flows


@pytest.mark.parametrize("trial", range(6))
def test_gang_program_matches_event_kernel_per_scenario(trial):
    rng = random.Random(500 + trial)
    n_scen, n_res, n_flows = 6, rng.randint(2, 6), rng.randint(3, 10)
    base_caps, scale, flows = _random_grid(rng, n_scen, n_res, n_flows)
    duration = 30.0

    program = GangFluidProgram(n_scen)
    rids = [program.add_resource(np.asarray(c) * np.asarray(scale))
            for c in base_caps]
    for path, size, cap, charges in flows:
        program.add_flow([(rids[r], w) for r, w in path], size=size,
                         cap=cap, charges=charges)
    result = program.run_steady(duration)

    assert result.transferred.shape == (n_scen, n_flows)
    assert result.rounds <= n_flows + 1
    for s in range(n_scen):
        transferred, finished, charge_total = _scalar_run(
            [c * scale[s] for c in base_caps], flows, duration)
        for j in range(n_flows):
            assert _agree(result.transferred[s, j], transferred[j]), (
                f"scenario {s} flow {j}: transferred "
                f"{result.transferred[s, j]} != {transferred[j]}")
            gang_fin = (result.finished_at[s, j]
                        if np.isfinite(result.finished_at[s, j]) else None)
            assert _agree(gang_fin, finished[j]), (
                f"scenario {s} flow {j}: finished_at "
                f"{gang_fin} != {finished[j]}")
        assert _agree(float(program.charged["acct"][s]), charge_total)


def test_pilot_order_divergence_is_reported():
    # Two flows on private links: in scenario 0, flow A finishes first;
    # in scenario 1 the capacities swap, so flow B finishes first.  Both
    # scenarios' numbers stay exact — only the order flag differs.
    program = GangFluidProgram(2)
    ra = program.add_resource(np.array([10.0, 1.0]), name="ra")
    rb = program.add_resource(np.array([1.0, 10.0]), name="rb")
    program.add_flow([(ra, 1.0)], size=10.0, name="A")
    program.add_flow([(rb, 1.0)], size=10.0, name="B")
    result = program.run_steady(100.0)
    assert not result.defected[0]  # the pilot defines the order
    assert result.defected[1]
    assert np.allclose(result.finished_at, [[1.0, 10.0], [10.0, 1.0]])
    assert np.allclose(result.transferred, 10.0)


def test_equal_scenarios_never_defect():
    program = GangFluidProgram(3)
    r = program.add_resource(5.0)
    program.add_flow([(r, 1.0)], size=10.0)
    program.add_flow([(r, 1.0)], size=20.0)
    result = program.run_steady(100.0)
    assert not result.defected.any()
    assert np.allclose(result.transferred, [[10.0, 20.0]] * 3)


def test_settle_clips_at_flow_size():
    program = GangFluidProgram(2)
    r = program.add_resource(np.array([4.0, 8.0]))
    program.add_flow([(r, 1.0)], size=10.0, charges=[("cpu", 0.5)])
    rates = program.solve()
    assert np.allclose(rates[:, 0], [4.0, 8.0])
    program.settle(rates, 10.0)  # 40/80 bytes offered, 10 accepted
    assert np.allclose(program.transferred[:, 0], 10.0)
    assert np.allclose(program.charged["cpu"], 5.0)


def test_per_scenario_weights_caps_and_sizes():
    program = GangFluidProgram(2)
    r = program.add_resource(12.0)
    # Scenario 0: equal weights (6/6); scenario 1: 2:1 split (8/4).
    program.add_flow([(r, np.array([1.0, 1.0]))], cap=np.array([100.0, 8.0]))
    program.add_flow([(r, np.array([1.0, 2.0]))])
    rates = program.solve(active=np.ones((2, 2), dtype=bool))
    assert np.allclose(rates[0], [6.0, 6.0])
    # Scenario 1: flow 1 charges weight 2 per byte -> equal fill level
    # freezes the link at level 4 (4*1 + 4*2 = 12).
    assert np.allclose(rates[1], [4.0, 4.0])


def test_construction_validation():
    program = GangFluidProgram(2)
    with pytest.raises(ValueError, match="at least one scenario"):
        GangFluidProgram(0)
    r = program.add_resource(5.0)
    with pytest.raises(ValueError, match="unknown resource"):
        program.add_flow([(7, 1.0)])
    with pytest.raises(ValueError, match="weight"):
        program.add_flow([(r, 0.0)])
    with pytest.raises(ValueError, match="size"):
        program.add_flow([(r, 1.0)], size=-1.0)
    with pytest.raises(ValueError, match="cap"):
        program.add_flow([(r, 1.0)], cap=0.0)
    with pytest.raises(ValueError, match="capacity"):
        program.add_resource(-1.0)
    inf = program.add_resource(np.inf)
    with pytest.raises(ValueError, match="unbounded"):
        program.add_flow([(inf, 1.0)])


def test_unbounded_flows_rejected_per_scenario():
    program = GangFluidProgram(2)
    inf = program.add_resource(np.inf)
    program.add_flow([(inf, 1.0)], cap=np.array([5.0, 10.0]), size=100.0)
    rates = program.solve()  # capped: fine
    assert np.allclose(rates[:, 0], [5.0, 10.0])
    # An infinite-capacity resource cannot bound its users, and neither
    # can one that is only finite in *some* scenarios — every scenario
    # must bound every flow, or construction fails up front.
    with pytest.raises(ValueError, match="unbounded"):
        program.add_flow([(inf, 1.0)])
    mixed = program.add_resource(np.array([5.0, np.inf]))
    with pytest.raises(ValueError, match="unbounded"):
        program.add_flow([(mixed, 1.0)])


def test_duplicate_path_entries_merge_weights():
    program = GangFluidProgram(1)
    r = program.add_resource(12.0)
    program.add_flow([(r, 1.0), (r, 2.0)])  # merges to weight 3
    rates = program.solve(active=np.ones((1, 1), dtype=bool))
    assert np.allclose(rates, [[4.0]])


def test_private_resource_folds_into_cap():
    # A resource with one structural user never arbitrates: it bounds
    # that flow like a cap (capacity/weight), exactly as the scalar
    # solver folds private resources.
    program = GangFluidProgram(2)
    shared = program.add_resource(100.0)
    private = program.add_resource(np.array([6.0, 60.0]))
    program.add_flow([(shared, 1.0), (private, 2.0)])
    program.add_flow([(shared, 1.0)], cap=50.0)
    rates = program.solve(active=np.ones((2, 2), dtype=bool))
    assert np.allclose(rates[0], [3.0, 50.0])   # private binds at 6/2
    assert np.allclose(rates[1], [30.0, 50.0])  # private binds at 60/2


def test_structural_edits_after_run_are_rejected():
    program = GangFluidProgram(1)
    r = program.add_resource(5.0)
    program.add_flow([(r, 1.0)], size=10.0)
    program.run_steady(1.0)
    program.add_flow([(r, 1.0)], size=10.0)
    with pytest.raises(SimulationError, match="after a gang run"):
        program.solve()
