"""Tests for links, framing efficiency, topologies and fluid TCP."""

import pytest

from repro.hw import Machine, Nic, NicKind, frontend_lan_host, wan_host
from repro.kernel import NumaPolicy, SimProcess, place_region
from repro.net import (
    TcpConnection,
    connect,
    ib_payload_efficiency,
    roce_payload_efficiency,
)
from repro.net.tcp import TcpEndpoint
from repro.net.topology import wire_frontend_lan, wire_san, wire_wan
from repro.sim.context import Context
from repro.util.units import gbps, to_gbps


def ctx():
    return Context.create(seed=5)


def small_pair(c):
    """Two single-NIC machines cabled together."""
    a = Machine(c, "a", pcie_sockets=(0,))
    b = Machine(c, "b", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    link = connect(na, nb, delay=83e-6)
    return a, b, na, nb, link


# --- framing efficiency --------------------------------------------------------


def test_roce_efficiency_close_to_calibration():
    from repro.core.calibration import CALIBRATION

    eff = roce_payload_efficiency(9000)
    assert eff == pytest.approx(CALIBRATION.roce_mtu9000_efficiency, abs=0.01)


def test_roce_efficiency_mtu_ordering():
    assert roce_payload_efficiency(1500) < roce_payload_efficiency(9000)


def test_ib_efficiency_in_range():
    eff = ib_payload_efficiency(4096)
    assert 0.94 < eff < 0.97


def test_efficiency_validation():
    with pytest.raises(ValueError):
        roce_payload_efficiency(40)
    with pytest.raises(ValueError):
        ib_payload_efficiency(10)


# --- links -----------------------------------------------------------------------


def test_link_rate_is_min_of_endpoints():
    c = ctx()
    _, _, na, nb, link = small_pair(c)
    assert link.rate == pytest.approx(min(na.data_rate(), nb.data_rate()))
    assert link.rate < gbps(40.0)


def test_link_direction_and_peer():
    c = ctx()
    _, _, na, nb, link = small_pair(c)
    assert link.direction(na) is not link.direction(nb)
    assert link.peer(na) is nb
    other = Machine(c, "x", pcie_sockets=(0,))
    nx = Nic(other, other.pcie_slots[0], NicKind.ROCE_QDR)
    with pytest.raises(ValueError):
        link.direction(nx)


def test_link_rtt():
    c = ctx()
    _, _, _, _, link = small_pair(c)
    assert link.rtt == pytest.approx(0.166e-3)


def test_link_double_cabling_rejected():
    c = ctx()
    a, b, na, nb, _ = small_pair(c)
    other = Machine(c, "x", pcie_sockets=(0,))
    nx = Nic(other, other.pcie_slots[0], NicKind.ROCE_QDR)
    with pytest.raises(ValueError):
        connect(na, nx)


def test_link_resources_tagged():
    c = ctx()
    _, _, na, _, link = small_pair(c)
    assert getattr(link.direction(na), "kind", None) == "link"


# --- topologies --------------------------------------------------------------------


def test_wire_frontend_lan_three_links():
    c = ctx()
    client = frontend_lan_host(c, "client")
    server = frontend_lan_host(c, "server")
    links = wire_frontend_lan(client, server)
    assert len(links) == 3
    total = sum(link.rate for link in links)
    assert to_gbps(total) > 110  # ~118 Gbps usable out of 120 line


def test_wire_san_two_links():
    c = ctx()
    front = frontend_lan_host(c, "front", with_ib=True)
    from repro.hw import backend_lan_host

    back = backend_lan_host(c, "back")
    wiring = wire_san(c, front, back)
    assert len(wiring.links) == 2
    assert to_gbps(sum(link.rate for link in wiring.links)) > 100  # 2 x FDR


def test_wire_wan_delay():
    c = ctx()
    link = wire_wan(wan_host(c, "nersc"), wan_host(c, "anl"))
    assert link.rtt == pytest.approx(95e-3)


# --- TCP ------------------------------------------------------------------------------


def tcp_conn(c, tuned=False, size=None):
    a, b, na, nb, link = small_pair(c)
    policy = NumaPolicy.bind(0) if tuned else NumaPolicy.default()
    sproc = SimProcess(a, "sender", cpu_policy=policy)
    rproc = SimProcess(b, "receiver", cpu_policy=policy)
    sbuf = place_region(
        1 << 30, sproc.mem_policy, a.n_nodes, touch_node=0 if tuned else None
    )
    rbuf = place_region(
        1 << 30, rproc.mem_policy, b.n_nodes, touch_node=0 if tuned else None
    )
    conn = TcpConnection(
        c,
        "tcp0",
        TcpEndpoint(sproc.spawn_thread(), na, sbuf),
        TcpEndpoint(rproc.spawn_thread(), nb, rbuf),
        tuned_irq=tuned,
    )
    return conn


def test_tcp_single_stream_is_serial_thread_capped():
    """One TCP stream is limited by its thread's serial per-byte costs
    (copy + kernel stack), *not* by the 40G link — the paper's 'host
    processing is the bottleneck' observation.  iperf needs parallel
    streams (-P) to fill the link."""
    c = ctx()
    conn = tcp_conn(c, tuned=True)
    conn.open()
    c.sim.run(until=5.0)
    c.fluid.settle()
    rate = conn.flow.transferred / 5.0
    assert 10 < to_gbps(rate) < 20  # ~14 Gbps with Fig.4-calibrated costs
    assert to_gbps(rate) < to_gbps(conn.link.rate)


def test_tcp_parallel_streams_fill_link():
    c = ctx()
    a, b, na, nb, link = small_pair(c)
    sproc = SimProcess(a, "snd", cpu_policy=NumaPolicy.bind(0))
    rproc = SimProcess(b, "rcv", cpu_policy=NumaPolicy.bind(0))
    conns = []
    for i in range(4):
        sbuf = place_region(1 << 28, sproc.mem_policy, 2, touch_node=0)
        rbuf = place_region(1 << 28, rproc.mem_policy, 2, touch_node=0)
        conn = TcpConnection(
            c,
            f"tcp{i}",
            TcpEndpoint(sproc.spawn_thread(), na, sbuf),
            TcpEndpoint(rproc.spawn_thread(), nb, rbuf),
            tuned_irq=True,
        )
        conn.open()
        conns.append(conn)
    c.sim.run(until=5.0)
    c.fluid.settle()
    total = sum(conn.flow.transferred for conn in conns) / 5.0
    assert to_gbps(total) > 30  # 4 streams saturate the 40G link


def test_tcp_tuned_faster_than_default():
    c1, c2 = ctx(), ctx()
    tuned = tcp_conn(c1, tuned=True)
    default = tcp_conn(c2, tuned=False)
    tuned.open()
    default.open()
    c1.sim.run(until=5.0)
    c2.sim.run(until=5.0)
    c1.fluid.settle()
    c2.fluid.settle()
    assert tuned.flow.transferred > default.flow.transferred


def test_tcp_sized_transfer_completes():
    c = ctx()
    conn = tcp_conn(c, tuned=True, size=True)
    flow = conn.open(size=100e6)
    c.sim.run(until=flow.done)
    assert flow.transferred == pytest.approx(100e6)
    conn.close()


def test_tcp_charges_copy_and_kernel_cpu():
    c = ctx()
    conn = tcp_conn(c, tuned=True)
    conn.open()
    c.sim.run(until=5.0)
    c.fluid.settle()
    snd = conn.sender.thread.accounting.seconds_by_category()
    rcv = conn.receiver.thread.accounting.seconds_by_category()
    assert snd["copy"] > 0
    assert snd["sys_proto"] > 0
    assert rcv["copy"] > 0
    # copies are a large share, as in Fig. 4
    assert snd["copy"] / sum(snd.values()) > 0.2


def test_tcp_double_open_rejected():
    c = ctx()
    conn = tcp_conn(c)
    conn.open()
    with pytest.raises(RuntimeError):
        conn.open()


def test_tcp_close_returns_bytes():
    c = ctx()
    conn = tcp_conn(c, tuned=True)
    conn.open()
    c.sim.run(until=2.0)
    moved = conn.close()
    assert moved > 0


def test_tcp_wan_slow_start_limits_early_throughput():
    c = ctx()
    nersc, anl = wan_host(c, "nersc"), wan_host(c, "anl")
    wire_wan(nersc, anl)
    sproc = SimProcess(nersc, "s", cpu_policy=NumaPolicy.bind(0))
    rproc = SimProcess(anl, "r", cpu_policy=NumaPolicy.bind(0))
    sbuf = place_region(1 << 30, sproc.mem_policy, 2, touch_node=0)
    rbuf = place_region(1 << 30, rproc.mem_policy, 2, touch_node=0)
    conn = TcpConnection(
        c,
        "wan-tcp",
        TcpEndpoint(sproc.spawn_thread(), nersc.pcie_slots[0].device, sbuf),
        TcpEndpoint(rproc.spawn_thread(), anl.pcie_slots[0].device, rbuf),
        tuned_irq=True,
    )
    conn.open()
    c.sim.run(until=1.0)
    c.fluid.settle()
    early = conn.flow.transferred
    c.sim.run(until=30.0)
    c.fluid.settle()
    late_rate = (conn.flow.transferred - early) / 29.0
    early_rate = early / 1.0
    # slow start: the first second is far slower than steady state
    assert early_rate < late_rate * 0.5
    # steady state reaches the serial-thread cap (~14 Gbps), despite 95 ms RTT
    assert to_gbps(late_rate) > 10
