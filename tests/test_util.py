"""Tests for the utility layer: units, tables, validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import (
    GB,
    GIB,
    KIB,
    MIB,
    bits_to_bytes,
    bytes_to_bits,
    fmt_bytes,
    fmt_rate,
    fmt_seconds,
    gbps,
    mbps,
)
from repro.util.tables import Table, comparison_table
from repro.util.units import to_gbps
from repro.util.validation import (
    check_choice,
    check_fraction,
    check_index,
    check_non_negative,
    check_positive,
    check_power_of_two,
    require,
)


# --- units -----------------------------------------------------------------------


def test_size_constants():
    assert GB == 1_000_000_000
    assert GIB == 1 << 30
    assert MIB == 1 << 20
    assert KIB == 1024


def test_gbps_round_trip():
    rate = gbps(40.0)
    assert rate == 5e9  # 40 Gb/s = 5 GB/s
    assert to_gbps(rate) == pytest.approx(40.0)


def test_mbps():
    assert mbps(8.0) == 1e6


def test_bit_byte_conversions():
    assert bytes_to_bits(10) == 80
    assert bits_to_bytes(80) == 10


@given(st.floats(min_value=0.0, max_value=1e15))
@settings(max_examples=50, deadline=None)
def test_gbps_inverse_property(x):
    assert to_gbps(gbps(x / 1e9)) == pytest.approx(x / 1e9, rel=1e-12)


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(2 * KIB) == "2.00 KiB"
    assert fmt_bytes(3 * MIB) == "3.00 MiB"
    assert fmt_bytes(5 * GIB) == "5.00 GiB"


def test_fmt_rate():
    assert fmt_rate(gbps(91.0)) == "91.00 Gbps"
    assert fmt_rate(mbps(500.0)) == "500.00 Mbps"
    assert "Kbps" in fmt_rate(100.0)


def test_fmt_seconds():
    assert fmt_seconds(90.0) == "1m30.0s"
    assert fmt_seconds(2.5) == "2.500s"
    assert fmt_seconds(0.0025) == "2.500ms"
    assert fmt_seconds(5e-6) == "5.0us"


# --- tables ----------------------------------------------------------------------


def test_table_render_alignment():
    t = Table(["name", "Gbps"], title="demo")
    t.add_row(["RFTP", 91.0])
    t.add_row(["GridFTP", 29.0])
    text = t.render()
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "RFTP" in text and "GridFTP" in text
    # second column starts at the same offset in header and data rows
    header, data = lines[2], lines[4]
    assert header.index("Gbps") == data.index("91.00")


def test_table_row_width_validation():
    t = Table(["a", "b"])
    with pytest.raises(ValueError):
        t.add_row([1])


def test_table_float_formatting():
    t = Table(["x"])
    t.add_row([0.000001])
    t.add_row([123456.0])
    t.add_row([1.5])
    text = t.render()
    assert "1e-06" in text
    assert "1.23e+05" in text  # %.3g for large values
    assert "1.50" in text


def test_comparison_table():
    t = comparison_table("demo", [("rate", 91, 92)])
    assert t.headers == ["metric", "paper", "measured"]
    assert "rate" in t.render()


# --- validation ------------------------------------------------------------------


def test_require():
    require(True, "fine")
    with pytest.raises(ValueError, match="broken"):
        require(False, "broken")


def test_check_positive():
    assert check_positive("x", 1.5) == 1.5
    for bad in (0, -1, float("nan"), float("inf")):
        with pytest.raises(ValueError):
            check_positive("x", bad)


def test_check_non_negative():
    assert check_non_negative("x", 0.0) == 0.0
    with pytest.raises(ValueError):
        check_non_negative("x", -0.1)
    with pytest.raises(ValueError):
        check_non_negative("x", float("inf"))


def test_check_fraction():
    assert check_fraction("x", 0.5) == 0.5
    assert check_fraction("x", 0.0) == 0.0
    assert check_fraction("x", 1.0) == 1.0
    with pytest.raises(ValueError):
        check_fraction("x", 1.01)


def test_check_index():
    assert check_index("i", 3, 5) == 3
    with pytest.raises(IndexError):
        check_index("i", 5, 5)
    with pytest.raises(TypeError):
        check_index("i", 1.0, 5)  # type: ignore[arg-type]


def test_check_choice():
    assert check_choice("mode", "a", ("a", "b")) == "a"
    with pytest.raises(ValueError):
        check_choice("mode", "c", ("a", "b"))


def test_check_power_of_two():
    assert check_power_of_two("x", 4096) == 4096
    for bad in (0, 3, -8):
        with pytest.raises(ValueError):
            check_power_of_two("x", bad)
