"""Tests for the BIASED policy, execution-local memory and sparklines."""

import pytest

from repro.hw import Machine
from repro.kernel import NumaPolicy, SimProcess, WorkItem, build_thread_path
from repro.kernel.numa import NumaPolicyKind
from repro.sim.context import Context
from repro.sim.trace import TimeSeries


def machine():
    return Machine(Context.create(seed=51), "m", pcie_sockets=(0,))


# --- BIASED policy ---------------------------------------------------------------


def test_biased_execution_fractions():
    p = NumaPolicy.biased(1, 0.7)
    assert p.execution_fractions(2) == {0: pytest.approx(0.3),
                                        1: pytest.approx(0.7)}


def test_biased_allocation_all_home():
    p = NumaPolicy.biased(0, 0.7)
    assert p.allocation_fractions(2) == {0: 1.0}


def test_biased_single_node_machine():
    p = NumaPolicy.biased(0, 0.7)
    assert p.execution_fractions(1) == {0: 1.0}


def test_biased_validation():
    with pytest.raises(ValueError):
        NumaPolicy.biased(0, home_fraction=0.0)
    with pytest.raises(ValueError):
        NumaPolicy.biased(0, home_fraction=1.5)
    with pytest.raises(ValueError):
        NumaPolicy(NumaPolicyKind.BIASED, (0, 1))
    p = NumaPolicy.biased(5)
    with pytest.raises(ValueError):
        p.execution_fractions(2)


def test_biased_thread_has_no_single_home():
    m = machine()
    proc = SimProcess(m, "p", cpu_policy=NumaPolicy.biased(0, 0.7))
    t = proc.spawn_thread()
    assert t.home_node() is None  # split across nodes
    fracs = t.execution_fractions()
    assert fracs[0] == pytest.approx(0.7)


# --- execution-local memory (mem_local) ----------------------------------------------


def test_mem_local_never_crosses_qpi():
    m = machine()
    proc = SimProcess(m, "p", cpu_policy=NumaPolicy.default())
    t = proc.spawn_thread()
    item = WorkItem("skb write", cpu_per_byte=1e-10,
                    mem_traffic=(WorkItem.mem_local(3.0),))
    spec = build_thread_path(t, [item])
    assert not any(getattr(r, "kind", None) == "qpi" for r, _ in spec.path)
    # traffic split across both banks per execution fractions
    w0 = sum(w for r, w in spec.path if r is m.mem_bank(0).bandwidth)
    w1 = sum(w for r, w in spec.path if r is m.mem_bank(1).bandwidth)
    assert w0 == pytest.approx(1.5)
    assert w1 == pytest.approx(1.5)


def test_mem_explicit_can_cross_qpi():
    m = machine()
    proc = SimProcess(m, "p", cpu_policy=NumaPolicy.default())
    t = proc.spawn_thread()
    item = WorkItem("buffer read", cpu_per_byte=1e-10,
                    mem_traffic=(WorkItem.mem({0: 1.0}, 1.0),))
    spec = build_thread_path(t, [item])
    assert any(getattr(r, "kind", None) == "qpi" for r, _ in spec.path)


# --- sparkline -----------------------------------------------------------------------


def test_sparkline_shape():
    ts = TimeSeries("x")
    for i in range(100):
        ts.record(float(i), float(i))
    line = ts.sparkline(width=10)
    assert len(line) == 10
    assert line[0] != line[-1]  # rising series
    assert line[-1] == "█"


def test_sparkline_flat_series():
    ts = TimeSeries("x")
    for i in range(10):
        ts.record(float(i), 5.0)
    line = ts.sparkline(width=5)
    assert len(set(line)) == 1  # all the same height


def test_sparkline_empty():
    assert TimeSeries("x").sparkline() == ""


def test_sparkline_short_series():
    ts = TimeSeries("x")
    ts.record(0.0, 1.0)
    ts.record(1.0, 2.0)
    assert len(ts.sparkline(width=60)) == 2
