"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    t = sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5
    assert t.processed and t.ok


def test_timeout_value():
    sim = Simulator()
    t = sim.timeout(1.0, value="payload")
    sim.run()
    assert t.value == "payload"


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run(until=20.0)
    assert sim.now == 20.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for d in (3.0, 1.0, 2.0):
        sim.timeout(d).add_callback(lambda ev, d=d: order.append(d))
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_simultaneous_events_fifo():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.timeout(1.0).add_callback(lambda ev, i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_basic_sequence():
    sim = Simulator()
    log = []

    def proc():
        log.append(("start", sim.now))
        yield sim.timeout(1.0)
        log.append(("mid", sim.now))
        yield sim.timeout(2.0)
        log.append(("end", sim.now))
        return 42

    p = sim.process(proc())
    result = sim.run(until=p)
    assert result == 42
    assert log == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]


def test_process_receives_event_value():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(1.0, value="hello")
        return got

    p = sim.process(proc())
    assert sim.run(until=p) == "hello"


def test_process_failure_propagates():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    p = sim.process(proc())
    with pytest.raises(RuntimeError, match="boom"):
        sim.run(until=p)


def test_yield_failed_event_raises_in_process():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def failer():
        yield sim.timeout(1.0)
        ev.fail(ValueError("bad"))

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(failer())
    p = sim.process(waiter())
    sim.run(until=p)
    assert caught == ["bad"]


def test_process_waits_on_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(5.0)
        return "child-done"

    def parent():
        result = yield sim.process(child())
        return result

    p = sim.process(parent())
    assert sim.run(until=p) == "child-done"
    assert sim.now == 5.0


def test_interrupt_delivers_cause():
    sim = Simulator()
    seen = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            seen.append((intr.cause, sim.now))

    def attacker(p):
        yield sim.timeout(2.0)
        p.interrupt("preempted")

    p = sim.process(victim())
    sim.process(attacker(p))
    sim.run()
    assert seen == [("preempted", 2.0)]


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.1)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            log.append(sim.now)
        yield sim.timeout(1.0)
        log.append(sim.now)

    def attacker(p):
        yield sim.timeout(3.0)
        p.interrupt()

    p = sim.process(victim())
    sim.process(attacker(p))
    sim.run()
    assert log == [3.0, 4.0]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_any_of_fires_on_first():
    sim = Simulator()
    a, b = sim.timeout(1.0, "a"), sim.timeout(2.0, "b")
    cond = AnyOf(sim, [a, b])

    def proc():
        got = yield cond
        return got

    p = sim.process(proc())
    result = sim.run(until=p)
    assert list(result.values()) == ["a"]
    assert sim.now == 1.0


def test_all_of_waits_for_all():
    sim = Simulator()
    a, b = sim.timeout(1.0, "a"), sim.timeout(2.0, "b")

    def proc():
        got = yield AllOf(sim, [a, b])
        return got

    p = sim.process(proc())
    result = sim.run(until=p)
    assert sorted(result.values()) == ["a", "b"]
    assert sim.now == 2.0


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc():
        got = yield AllOf(sim, [])
        return got

    p = sim.process(proc())
    assert sim.run(until=p) == {}


def test_callback_after_processed_runs_immediately():
    sim = Simulator()
    t = sim.timeout(1.0)
    sim.run()
    fired = []
    t.add_callback(lambda ev: fired.append(True))
    assert fired == [True]


def test_run_until_event_starved_raises():
    sim = Simulator()
    ev = sim.event()  # never triggered
    with pytest.raises(SimulationError, match="starved"):
        sim.run(until=ev)


def test_yield_non_event_raises():
    sim = Simulator()

    def proc():
        yield 42

    sim.process(proc())
    with pytest.raises(SimulationError, match="must yield Events"):
        sim.run()


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    # a Timeout is pushed on creation
    assert sim.peek() == 7.0


def test_step_on_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_many_processes_share_clock():
    sim = Simulator()
    done = []

    def worker(i):
        yield sim.timeout(i * 0.5)
        done.append(i)

    for i in range(10):
        sim.process(worker(i))
    sim.run()
    assert done == sorted(done)
    assert len(done) == 10
