"""Property tests: the fluid scheduler under dynamic arrivals/departures.

The static allocation properties are covered in test_sim_fluid; these
tests drive randomized *schedules* of flow starts, stops and capacity
changes and assert global invariants at every sampled instant:

* feasibility — no resource ever over its capacity;
* conservation — bytes delivered equal the integral of rates;
* monotonicity — transferred counters never decrease;
* completion — sized flows finish exactly (never over-deliver).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FluidFlow, FluidResource, FluidScheduler, Simulator


@st.composite
def churn_scenario(draw):
    n_res = draw(st.integers(min_value=1, max_value=3))
    capacities = [draw(st.floats(min_value=10.0, max_value=1000.0))
                  for _ in range(n_res)]
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for _ in range(n_flows):
        start = draw(st.floats(min_value=0.0, max_value=50.0))
        size = draw(st.one_of(
            st.none(), st.floats(min_value=10.0, max_value=5000.0)))
        stop_after = (
            draw(st.floats(min_value=1.0, max_value=50.0))
            if size is None else None
        )
        used = draw(st.lists(
            st.integers(min_value=0, max_value=n_res - 1),
            min_size=1, max_size=n_res, unique=True))
        weights = [draw(st.floats(min_value=0.5, max_value=2.0))
                   for _ in used]
        cap = draw(st.one_of(st.none(),
                             st.floats(min_value=1.0, max_value=500.0)))
        flows.append((start, size, stop_after, list(zip(used, weights)), cap))
    cap_changes = draw(st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=80.0),  # when
            st.integers(min_value=0, max_value=n_res - 1),  # which
            st.floats(min_value=5.0, max_value=1000.0),  # new capacity
        ),
        max_size=3,
    ))
    return capacities, flows, cap_changes


@given(churn_scenario())
@settings(max_examples=60, deadline=None)
def test_fluid_invariants_under_churn(scenario):
    capacities, flow_specs, cap_changes = scenario
    sim = Simulator()
    sched = FluidScheduler(sim)
    resources = [FluidResource(sched, c, f"r{i}")
                 for i, c in enumerate(capacities)]

    flows = []

    def starter(delay, flow, stop_after):
        yield sim.timeout(delay)
        sched.start(flow)
        if stop_after is not None:
            yield sim.timeout(stop_after)
            if flow._active:
                sched.stop(flow)

    for i, (start, size, stop_after, path_idx, cap) in enumerate(flow_specs):
        path = [(resources[j], w) for j, w in path_idx]
        flow = FluidFlow(path, size=size, cap=cap, name=f"f{i}")
        flows.append(flow)
        sim.process(starter(start, flow, stop_after))

    def capacity_changer(when, idx, new_cap):
        yield sim.timeout(when)
        resources[idx].set_capacity(new_cap)

    for when, idx, new_cap in cap_changes:
        sim.process(capacity_changer(when, idx, new_cap))

    last_transferred = {f: 0.0 for f in flows}
    horizon = 120.0
    t = 0.0
    while t < horizon:
        t += 3.0
        sim.run(until=t)
        sched.settle()
        # feasibility at this instant
        for r in resources:
            assert r.load <= r.capacity * (1 + 1e-6), (
                f"{r.name} over capacity at t={t}"
            )
        # monotonic progress; sized flows never over-deliver
        for f in flows:
            assert f.transferred >= last_transferred[f] - 1e-9
            last_transferred[f] = f.transferred
            if f.size is not None:
                assert f.transferred <= f.size * (1 + 1e-9)

    sim.run()  # drain remaining events
    sched.settle()
    for f in flows:
        if f.size is not None and f.done is not None and f.done.triggered:
            assert f.transferred == pytest.approx(f.size, rel=1e-9)


@given(
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=50.0, max_value=500.0),
)
@settings(max_examples=30, deadline=None)
def test_staggered_equal_flows_complete_in_order(n_flows, capacity):
    """Flows of equal size started in sequence finish in start order."""
    sim = Simulator()
    sched = FluidScheduler(sim)
    link = FluidResource(sched, capacity, "link")
    flows = [FluidFlow([(link, 1.0)], size=1000.0, name=f"f{i}")
             for i in range(n_flows)]
    finish_times = {}

    def starter(i, f):
        yield sim.timeout(i * 1.0)
        yield sched.start(f)
        finish_times[i] = sim.now

    for i, f in enumerate(flows):
        sim.process(starter(i, f))
    sim.run()
    order = [finish_times[i] for i in range(n_flows)]
    assert order == sorted(order)
    # total service time >= total bytes / capacity
    assert max(order) >= n_flows * 1000.0 / capacity - 1e-9
