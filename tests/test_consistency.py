"""Cross-granularity consistency: event-level vs fluid vs analytic.

The library models the same protocols at two granularities — per-event
(real work requests, real bytes) and fluid (long-lived flows).  These
tests check the granularities agree where they overlap, which is the
strongest internal-validity check the reproduction has.
"""

import numpy as np
import pytest

from repro.apps.fio import FioJob, run_fio
from repro.hw import Machine, Nic, NicKind, backend_lan_host, frontend_lan_host
from repro.kernel import NumaPolicy, place_region
from repro.net.link import connect
from repro.net.topology import wire_san
from repro.rdma import ConnectionManager, Opcode, ProtectionDomain, WorkRequest
from repro.sim.context import Context
from repro.storage import IoRequest, IserInitiator, IserTarget
from repro.storage.iser import io_round_trip_latency
from repro.util.units import MIB


def rdma_pair(seed=81):
    c = Context.create(seed=seed)
    a = Machine(c, "a", pcie_sockets=(0,))
    b = Machine(c, "b", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    link = connect(na, nb)
    qa, qb, hs = ConnectionManager(c).connect_pair(na, nb, name="q")
    c.sim.run(until=hs)
    pd_a, pd_b = ProtectionDomain(a), ProtectionDomain(b)
    ConnectionManager.register_pd(pd_a)
    ConnectionManager.register_pd(pd_b)
    return c, a, b, qa, qb, pd_a, pd_b, link


def test_per_wr_and_bulk_channel_agree_on_throughput():
    """Posting back-to-back large WRs matches the bulk fluid channel."""
    c, a, b, qa, qb, pd_a, pd_b, link = rdma_pair()
    size = 256 * MIB
    src = pd_a.register(place_region(size, NumaPolicy.bind(0), 2))
    dst = pd_b.register(place_region(size, NumaPolicy.bind(0), 2))

    # event level: 8 sequential RDMA WRITEs of 32 MiB
    t0 = c.sim.now
    for i in range(8):
        wr = WorkRequest(Opcode.RDMA_WRITE, src, local_offset=0,
                         length=32 * MIB, remote_rkey=dst.rkey)
        c.sim.run(until=qa.post_send(wr))
    event_rate = size / (c.sim.now - t0)

    # fluid level: one open channel, measured over the same byte count
    flow = qa.bulk_channel(src_mr=src, dst_mr=dst, size=float(size))
    t0 = c.sim.now
    c.fluid.start(flow)
    c.sim.run(until=flow.done)
    fluid_rate = size / (c.sim.now - t0)

    # event level pays per-WR latency; with 32 MiB WRs that's < 1%
    assert event_rate == pytest.approx(fluid_rate, rel=0.02)


def test_single_io_latency_matches_analytic_round_trip():
    """Event-level SCSI command latency ~ io_round_trip_latency + data."""
    c = Context.create(seed=82)
    front = frontend_lan_host(c, "front", with_ib=True)
    back = backend_lan_host(c, "back")
    wiring = wire_san(c, front, back)
    target = IserTarget(c, back, tuning="numa", n_links=2)
    target.create_lun(64 * MIB, store_data=True)
    initiator = IserInitiator(c, front, target)
    c.sim.run(until=initiator.login_all())
    dev = initiator.device(0)
    link = wiring.links[0]

    for size, is_write in ((4096, False), (4096, True), (1 * MIB, False)):
        data = np.zeros(size, dtype=np.uint8)
        t0 = c.sim.now
        done = dev.submit(IoRequest(is_write, offset=0, length=size,
                                    data=data))
        c.sim.run(until=done)
        measured = c.sim.now - t0
        analytic = io_round_trip_latency(c.ctx if hasattr(c, "ctx") else c,
                                         link, is_write)
        # measured includes data serialization on top of the fixed part
        assert measured >= analytic * 0.5
        assert measured < analytic + size / 1e8 + 5e-4


def test_fio_event_vs_fluid_same_ceiling():
    """fio's fluid result matches serial event-level I/O extrapolation.

    One synchronous thread at event level has per-I/O latency L; its
    implied rate is block/L.  The fluid model's single-flow cap must be
    within ~25% of that (fluid ignores some per-op latencies; event
    level lacks pipelining)."""
    c = Context.create(seed=83)
    front = frontend_lan_host(c, "front", with_ib=True)
    back = backend_lan_host(c, "back")
    wire_san(c, front, back)
    target = IserTarget(c, back, tuning="numa", n_links=2)
    target.create_lun(256 * MIB, store_data=False)
    initiator = IserInitiator(c, front, target)
    c.sim.run(until=initiator.login_all())
    dev = initiator.device(0)
    block = 4 * MIB

    # event level: 16 sequential reads
    t0 = c.sim.now
    for i in range(16):
        done = dev.submit(IoRequest(False, offset=i * block, length=block))
        c.sim.run(until=done)
    event_rate = 16 * block / (c.sim.now - t0)

    # fluid level: one job, one thread
    res = run_fio(c, front, [dev],
                  FioJob(rw="read", block_size=block, numjobs=1,
                         runtime=10.0))
    assert res.bandwidth == pytest.approx(event_rate, rel=0.3)


def test_fio_latency_and_iops_consistent():
    c = Context.create(seed=84)
    front = frontend_lan_host(c, "front", with_ib=True)
    back = backend_lan_host(c, "back")
    wire_san(c, front, back)
    target = IserTarget(c, back, tuning="numa", n_links=2)
    for _ in range(6):
        target.create_lun(256 * MIB)
    initiator = IserInitiator(c, front, target)
    c.sim.run(until=initiator.login_all())
    devices = [initiator.devices[i] for i in sorted(initiator.devices)]
    res = run_fio(c, front, devices,
                  FioJob(rw="read", block_size=1 * MIB, numjobs=4,
                         runtime=10.0))
    lat = res.completion_latency()
    # Little's law closes: outstanding = IOPS * latency
    assert res.iops * lat == pytest.approx(res.n_flows, rel=1e-6)
    # and the latency is physically sensible (> wire serialization)
    assert lat > 1 * MIB / devices[0].session.link.rate
