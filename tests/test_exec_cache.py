"""Tests for the content-addressed result cache (`repro.exec`).

Covers key stability, every invalidation axis the cache promises
(calibration field, seed, params, code fingerprint), and recovery from
corrupt or truncated on-disk entries.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.calibration import CALIBRATION
from repro.exec import ExecContext, ResultCache, SimTask, code_fingerprint, run_tasks

#: execution log for the probe target below (serial runs mutate in-process).
PROBE_CALLS: list[str] = []


def probe_task(*, seed, cal, tag, factor=1.0):
    """A tiny deterministic SimTask target for cache/runner tests."""
    PROBE_CALLS.append(tag)
    qpi = (cal if cal is not None else CALIBRATION).qpi_bandwidth
    return {"tag": tag, "seed": seed, "value": qpi * factor}


TARGET = "tests.test_exec_cache:probe_task"


def make_task(tag="t", seed=0, cal=None, **extra):
    return SimTask(TARGET, {"tag": tag, **extra}, seed=seed, cal=cal)


# -- identity / key ----------------------------------------------------------------


def test_key_stable_across_param_order(tmp_path):
    cache = ResultCache(tmp_path)
    a = SimTask(TARGET, {"tag": "x", "factor": 2.0})
    b = SimTask(TARGET, {"factor": 2.0, "tag": "x"})
    assert cache.key_for(a) == cache.key_for(b)


def test_key_ignores_label(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.key_for(make_task()) == cache.key_for(
        SimTask(TARGET, {"tag": "t"}, label="pretty name"))


def test_key_changes_with_seed_params_target(tmp_path):
    cache = ResultCache(tmp_path)
    base = cache.key_for(make_task())
    assert cache.key_for(make_task(seed=1)) != base
    assert cache.key_for(make_task(factor=3.0)) != base
    assert cache.key_for(
        SimTask("tests.test_exec_cache:other_fn", {"tag": "t"})) != base


def test_key_changes_with_any_calibration_field(tmp_path):
    cache = ResultCache(tmp_path)
    base = cache.key_for(make_task(cal=CALIBRATION))
    for field_name in ("qpi_bandwidth", "rftp_credits_per_stream",
                       "ssd_cooldown_seconds"):
        value = getattr(CALIBRATION, field_name)
        perturbed = CALIBRATION.replace(**{field_name: value * 2})
        assert cache.key_for(make_task(cal=perturbed)) != base, field_name


def test_key_changes_with_code_fingerprint(tmp_path):
    a = ResultCache(tmp_path, fingerprint="aaaa")
    b = ResultCache(tmp_path, fingerprint="bbbb")
    task = make_task()
    assert a.key_for(task) != b.key_for(task)


def test_bad_target_rejected():
    with pytest.raises(ValueError):
        SimTask("no_colon_here", {})


def test_non_canonical_params_rejected(tmp_path):
    task = SimTask(TARGET, {"tag": object()})
    with pytest.raises(TypeError):
        ResultCache(tmp_path).key_for(task)


def test_code_fingerprint_tracks_source(tmp_path):
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    (tmp_path / "a" / "m.py").write_text("x = 1\n")
    (tmp_path / "b" / "m.py").write_text("x = 2\n")
    assert code_fingerprint(tmp_path / "a") != code_fingerprint(tmp_path / "b")
    assert code_fingerprint(tmp_path / "a") == code_fingerprint(tmp_path / "a")
    # The library's own fingerprint is memoized and stable in-process.
    assert code_fingerprint() == code_fingerprint()


# -- hit / miss / invalidation through the runner -----------------------------------


def test_cache_hit_skips_execution_and_equals_fresh_run(tmp_path):
    cache = ResultCache(tmp_path)
    tasks = [make_task("a"), make_task("b", factor=2.0)]
    PROBE_CALLS.clear()
    fresh = run_tasks(tasks, ExecContext(jobs=1, cache=cache))
    assert PROBE_CALLS == ["a", "b"]
    assert cache.stats.misses == 2 and cache.stats.stores == 2

    warm = run_tasks(tasks, ExecContext(jobs=1, cache=cache))
    assert PROBE_CALLS == ["a", "b"]  # nothing re-executed
    assert warm == fresh
    assert cache.stats.hits == 2


def test_calibration_change_misses(tmp_path):
    cache = ResultCache(tmp_path)
    run_tasks([make_task(cal=CALIBRATION)], ExecContext(cache=cache))
    perturbed = CALIBRATION.replace(qpi_bandwidth=CALIBRATION.qpi_bandwidth * 1.2)
    PROBE_CALLS.clear()
    result, = run_tasks([make_task(cal=perturbed)], ExecContext(cache=cache))
    assert PROBE_CALLS == ["t"]  # recomputed, not served stale
    assert result["value"] == pytest.approx(CALIBRATION.qpi_bandwidth * 1.2)


def test_seed_change_misses(tmp_path):
    cache = ResultCache(tmp_path)
    run_tasks([make_task(seed=0)], ExecContext(cache=cache))
    PROBE_CALLS.clear()
    run_tasks([make_task(seed=7)], ExecContext(cache=cache))
    assert PROBE_CALLS == ["t"]


def test_fingerprint_change_misses(tmp_path):
    old = ResultCache(tmp_path, fingerprint="code-v1")
    run_tasks([make_task()], ExecContext(cache=old))
    new = ResultCache(tmp_path, fingerprint="code-v2")
    PROBE_CALLS.clear()
    run_tasks([make_task()], ExecContext(cache=new))
    assert PROBE_CALLS == ["t"]
    assert new.stats.misses == 1 and new.stats.hits == 0


def test_dedup_within_one_batch(tmp_path):
    cache = ResultCache(tmp_path)
    tasks = [make_task("same"), make_task("same"), make_task("same")]
    PROBE_CALLS.clear()
    results = run_tasks(tasks, ExecContext(cache=cache))
    assert PROBE_CALLS == ["same"]  # identical tasks execute once
    assert results[0] == results[1] == results[2]
    assert cache.stats.stores == 1


# -- corrupt entries ---------------------------------------------------------------


def _entry_files(tmp_path):
    return sorted(tmp_path.rglob("*.pkl"))


def test_corrupt_entry_discarded_and_recomputed(tmp_path):
    cache = ResultCache(tmp_path)
    task = make_task()
    run_tasks([task], ExecContext(cache=cache))
    entry, = _entry_files(tmp_path)
    entry.write_bytes(b"this is not a pickle")

    PROBE_CALLS.clear()
    result, = run_tasks([task], ExecContext(cache=cache))
    assert PROBE_CALLS == ["t"]
    assert cache.stats.discarded == 1
    # ...and the rewritten entry serves the next lookup.
    hit, value = cache.get(task)
    assert hit and value == result


def test_truncated_entry_discarded(tmp_path):
    cache = ResultCache(tmp_path)
    task = make_task()
    run_tasks([task], ExecContext(cache=cache))
    entry, = _entry_files(tmp_path)
    entry.write_bytes(entry.read_bytes()[:10])

    hit, _ = cache.get(task)
    assert not hit
    assert cache.stats.discarded == 1
    assert not _entry_files(tmp_path)  # the broken file was deleted


def test_key_mismatch_entry_discarded(tmp_path):
    cache = ResultCache(tmp_path)
    task = make_task()
    path = cache._path(cache.key_for(task))
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps({"key": "somebody-else", "result": 42}))

    hit, _ = cache.get(task)
    assert not hit and cache.stats.discarded == 1


def test_put_failure_is_nonfatal(tmp_path):
    target = tmp_path / "blocked"
    target.write_text("a file where the cache dir should be")
    cache = ResultCache(target / "sub")
    cache.put(make_task(), {"x": 1})  # must not raise
    assert cache.stats.stores == 0
