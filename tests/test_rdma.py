"""Tests for the RDMA verbs model."""

import numpy as np
import pytest

from repro.hw import Machine, Nic, NicKind
from repro.kernel import NumaPolicy, place_region
from repro.net.link import connect
from repro.rdma import (
    CompletionQueue,
    ConnectionManager,
    Opcode,
    ProtectionDomain,
    QueuePair,
    WorkRequest,
    WrStatus,
)
from repro.sim.context import Context
from repro.util.units import to_gbps


def setup_pair(seed=9, mtu=9000):
    c = Context.create(seed=seed)
    a = Machine(c, "a", pcie_sockets=(0,))
    b = Machine(c, "b", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR, mtu=mtu)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR, mtu=mtu)
    link = connect(na, nb, delay=83e-6)
    cm = ConnectionManager(c)
    qp_a, qp_b, hs = cm.connect_pair(na, nb, name="qp0")
    c.sim.run(until=hs)
    pd_a, pd_b = ProtectionDomain(a), ProtectionDomain(b)
    ConnectionManager.register_pd(pd_a)
    ConnectionManager.register_pd(pd_b)
    return c, a, b, qp_a, qp_b, pd_a, pd_b, link


def region(machine, size, node=0):
    return place_region(size, NumaPolicy.bind(node), machine.n_nodes)


def mr_with_data(pd, machine, size, fill=None, node=0):
    data = np.zeros(size, dtype=np.uint8)
    if fill is not None:
        data[:] = fill
    return pd.register(region(machine, size, node), data=data)


# --- connection management -------------------------------------------------------


def test_handshake_takes_three_trips():
    c = Context.create()
    a = Machine(c, "a", pcie_sockets=(0,))
    b = Machine(c, "b", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    connect(na, nb, delay=1e-3)
    qp_a, qp_b, hs = ConnectionManager(c).connect_pair(na, nb, name="qp")
    assert not qp_a.connected
    c.sim.run(until=hs)
    assert c.sim.now == pytest.approx(3e-3)
    assert qp_a.connected and qp_b.connected
    assert qp_a.peer is qp_b


def test_connect_uncabled_nics_rejected():
    c = Context.create()
    a = Machine(c, "a", pcie_sockets=(0, 1))
    na0 = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    na1 = Nic(a, a.pcie_slots[1], NicKind.ROCE_QDR)
    with pytest.raises(ValueError):
        ConnectionManager(c).connect_pair(na0, na1)


def test_post_on_unconnected_qp_rejected():
    c = Context.create()
    a = Machine(c, "a", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    qp = QueuePair(c, na, CompletionQueue(c))
    pd = ProtectionDomain(a)
    mr = pd.register(region(a, 4096))
    with pytest.raises(RuntimeError):
        qp.post_send(WorkRequest(Opcode.SEND, mr, length=64))


# --- SEND / RECV -------------------------------------------------------------------


def test_send_recv_moves_real_bytes():
    c, a, b, qp_a, qp_b, pd_a, pd_b, _ = setup_pair()
    src = mr_with_data(pd_a, a, 4096, fill=7)
    dst = mr_with_data(pd_b, b, 4096, fill=0)
    qp_b.post_recv(WorkRequest(Opcode.RECV, dst, length=4096))
    done = qp_a.post_send(WorkRequest(Opcode.SEND, src, length=4096))
    completion = c.sim.run(until=done)
    assert completion.status is WrStatus.SUCCESS
    assert (dst.data == 7).all()
    # receiver CQ got its completion too
    rc = qp_b.recv_cq.poll()
    assert rc is not None and rc.opcode is Opcode.RECV


def test_send_without_recv_fails():
    c, a, b, qp_a, qp_b, pd_a, pd_b, _ = setup_pair()
    src = mr_with_data(pd_a, a, 4096)
    done = qp_a.post_send(WorkRequest(Opcode.SEND, src, length=4096))
    completion = c.sim.run(until=done)
    assert completion.status is WrStatus.RECV_NOT_POSTED


def test_send_too_big_for_recv_fails():
    c, a, b, qp_a, qp_b, pd_a, pd_b, _ = setup_pair()
    src = mr_with_data(pd_a, a, 4096)
    dst = mr_with_data(pd_b, b, 1024)
    qp_b.post_recv(WorkRequest(Opcode.RECV, dst, length=1024))
    done = qp_a.post_send(WorkRequest(Opcode.SEND, src, length=4096))
    completion = c.sim.run(until=done)
    assert completion.status is WrStatus.REMOTE_ACCESS_ERROR


def test_recv_wrong_opcode_rejected():
    c, a, b, qp_a, qp_b, pd_a, pd_b, _ = setup_pair()
    src = mr_with_data(pd_a, a, 64)
    with pytest.raises(ValueError):
        qp_b.post_recv(WorkRequest(Opcode.SEND, src, length=64))
    with pytest.raises(ValueError):
        qp_a.post_send(WorkRequest(Opcode.RECV, src, length=64))


# --- one-sided ops ------------------------------------------------------------------


def test_rdma_write_moves_bytes_without_recv():
    c, a, b, qp_a, qp_b, pd_a, pd_b, _ = setup_pair()
    src = mr_with_data(pd_a, a, 8192, fill=3)
    dst = mr_with_data(pd_b, b, 8192, fill=0)
    wr = WorkRequest(
        Opcode.RDMA_WRITE, src, length=8192, remote_rkey=dst.rkey, remote_offset=0
    )
    completion = c.sim.run(until=qp_a.post_send(wr))
    assert completion.status is WrStatus.SUCCESS
    assert (dst.data == 3).all()


def test_rdma_write_bad_rkey_fails():
    c, a, b, qp_a, qp_b, pd_a, pd_b, _ = setup_pair()
    src = mr_with_data(pd_a, a, 4096)
    wr = WorkRequest(Opcode.RDMA_WRITE, src, length=4096, remote_rkey=0xDEAD)
    completion = c.sim.run(until=qp_a.post_send(wr))
    assert completion.status is WrStatus.REMOTE_ACCESS_ERROR


def test_rdma_write_range_overflow_fails():
    c, a, b, qp_a, qp_b, pd_a, pd_b, _ = setup_pair()
    src = mr_with_data(pd_a, a, 4096)
    dst = mr_with_data(pd_b, b, 1024)
    wr = WorkRequest(
        Opcode.RDMA_WRITE, src, length=4096, remote_rkey=dst.rkey, remote_offset=0
    )
    completion = c.sim.run(until=qp_a.post_send(wr))
    assert completion.status is WrStatus.REMOTE_ACCESS_ERROR


def test_rdma_read_fetches_remote_bytes():
    c, a, b, qp_a, qp_b, pd_a, pd_b, _ = setup_pair()
    local = mr_with_data(pd_a, a, 4096, fill=0)
    remote = mr_with_data(pd_b, b, 4096, fill=9)
    wr = WorkRequest(
        Opcode.RDMA_READ, local, length=4096, remote_rkey=remote.rkey
    )
    completion = c.sim.run(until=qp_a.post_send(wr))
    assert completion.status is WrStatus.SUCCESS
    assert (local.data == 9).all()


def test_rdma_read_slower_than_write():
    """RDMA READ pays a request trip + derate (paper §4.2)."""
    c1 = setup_pair(seed=1)
    c2 = setup_pair(seed=2)
    size = 64 << 20

    cw, aw, bw, qpw, _, pdw_a, pdw_b, _ = c1
    src = pdw_a.register(region(aw, size))
    dst = pdw_b.register(region(bw, size))
    t0 = cw.sim.now
    wr = WorkRequest(Opcode.RDMA_WRITE, src, length=size, remote_rkey=dst.rkey)
    cw.sim.run(until=qpw.post_send(wr))
    write_time = cw.sim.now - t0

    cr, ar, br, qpr, _, pdr_a, pdr_b, _ = c2
    local = pdr_a.register(region(ar, size))
    remote = pdr_b.register(region(br, size))
    t0 = cr.sim.now
    wr = WorkRequest(Opcode.RDMA_READ, local, length=size, remote_rkey=remote.rkey)
    cr.sim.run(until=qpr.post_send(wr))
    read_time = cr.sim.now - t0

    assert read_time > write_time
    # derate is ~7%: read time should be 5-15% above write time
    assert read_time / write_time == pytest.approx(1.0 / 0.93, rel=0.05)


def test_local_protection_error():
    c, a, b, qp_a, qp_b, pd_a, pd_b, _ = setup_pair()
    src = mr_with_data(pd_a, a, 1024)
    wr = WorkRequest(Opcode.SEND, src, local_offset=512, length=1024)
    completion = c.sim.run(until=qp_a.post_send(wr))
    assert completion.status is WrStatus.LOCAL_PROTECTION_ERROR


def test_deregistered_mr_rejected():
    c, a, b, qp_a, qp_b, pd_a, pd_b, _ = setup_pair()
    src = mr_with_data(pd_a, a, 1024)
    dst = mr_with_data(pd_b, b, 1024)
    dst.deregister()
    wr = WorkRequest(
        Opcode.RDMA_WRITE, src, length=1024, remote_rkey=dst.rkey
    )
    completion = c.sim.run(until=qp_a.post_send(wr))
    assert completion.status is WrStatus.REMOTE_ACCESS_ERROR


# --- throughput ------------------------------------------------------------------------


def test_large_write_approaches_link_rate():
    c, a, b, qp_a, qp_b, pd_a, pd_b, link = setup_pair()
    size = 1 << 30
    src = pd_a.register(region(a, size))
    dst = pd_b.register(region(b, size))
    t0 = c.sim.now
    wr = WorkRequest(Opcode.RDMA_WRITE, src, length=size, remote_rkey=dst.rkey)
    c.sim.run(until=qp_a.post_send(wr))
    rate = size / (c.sim.now - t0)
    assert rate == pytest.approx(link.rate, rel=0.01)
    assert to_gbps(rate) > 38


def test_bulk_channel_zero_copy_throughput():
    c, a, b, qp_a, qp_b, pd_a, pd_b, link = setup_pair()
    src = pd_a.register(region(a, 1 << 30))
    dst = pd_b.register(region(b, 1 << 30))
    flow = qp_a.bulk_channel(src_mr=src, dst_mr=dst, size=None, name="bulk")
    c.fluid.start(flow)
    c.sim.run(until=10.0)
    c.fluid.settle()
    rate = flow.transferred / (10.0 - 3 * link.delay)
    assert rate == pytest.approx(link.rate, rel=0.02)
    c.fluid.stop(flow)


def test_bulk_channel_read_derated():
    c, a, b, qp_a, qp_b, pd_a, pd_b, link = setup_pair()
    src = pd_a.register(region(a, 1 << 30))
    dst = pd_b.register(region(b, 1 << 30))
    wflow = qp_a.bulk_channel(src_mr=src, dst_mr=dst, opcode=Opcode.RDMA_WRITE)
    c.fluid.start(wflow)
    c.sim.run(until=5.0)
    c.fluid.settle()
    wrate = wflow.transferred / 5.0
    c.fluid.stop(wflow)
    rflow = qp_b.bulk_channel(src_mr=dst, dst_mr=src, opcode=Opcode.RDMA_READ)
    t0 = c.sim.now
    c.fluid.start(rflow)
    c.sim.run(until=t0 + 5.0)
    c.fluid.settle()
    rrate = rflow.transferred / 5.0
    c.fluid.stop(rflow)
    assert rrate < wrate
    assert rrate / wrate == pytest.approx(0.93, rel=0.02)


def test_small_message_is_latency_bound():
    c, a, b, qp_a, qp_b, pd_a, pd_b, link = setup_pair()
    src = mr_with_data(pd_a, a, 256)
    dst = mr_with_data(pd_b, b, 256)
    qp_b.post_recv(WorkRequest(Opcode.RECV, dst, length=256))
    t0 = c.sim.now
    c.sim.run(until=qp_a.post_send(WorkRequest(Opcode.SEND, src, length=256)))
    elapsed = c.sim.now - t0
    # dominated by op latency + one propagation delay, well under 1 ms
    assert elapsed < 1e-3
    assert elapsed >= link.delay
