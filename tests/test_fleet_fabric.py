"""Fleet fabric: spec validation, QP/CM cliffs, WAN routing, ext-fleet."""

import pytest

from repro.core.experiments import ext_fleet
from repro.rdma.qpool import QpPoolConfig, QpPoolSet
from repro.service.fabric import FabricSpec, boundary_links, run_fabric
from repro.sim.context import Context


# -- FabricSpec validation -------------------------------------------------

def test_spec_rejects_unknown_qp_mode():
    with pytest.raises(ValueError, match="qp_mode"):
        FabricSpec(qp_mode="warm")


def test_spec_rejects_more_wan_tenants_than_tenants():
    with pytest.raises(ValueError, match="wan_tenants"):
        FabricSpec(n_tenants=4, wan_tenants=5)


def test_spec_rejects_serve_past_horizon():
    with pytest.raises(ValueError, match="serve_s"):
        FabricSpec(serve_s=12.0, horizon_s=10.0)


def test_boundary_links_cover_the_wan():
    spec = FabricSpec(n_wan_links=3, wan_gbps=80.0)
    links = boundary_links(spec)
    assert [b.name for b in links] == ["wan0", "wan1", "wan2"]
    assert all(b.capacity == pytest.approx(10e9) for b in links)
    assert FabricSpec(n_pods=4, hosts_per_pod=16).n_hosts == 64


# -- QP pool accounting ----------------------------------------------------

def test_qpool_config_validates():
    with pytest.raises(ValueError, match="mode"):
        QpPoolConfig(mode="eager")
    with pytest.raises(ValueError, match="thrash_floor"):
        QpPoolConfig(thrash_floor=0.0)
    with pytest.raises(ValueError, match="cm_base_s"):
        QpPoolConfig(cm_base_s=-1.0)


def _pool(**cfg):
    ctx = Context.create(seed=0)
    return ctx, QpPoolSet(ctx, QpPoolConfig(**cfg))


def test_pooled_mode_creates_once_per_tenant_then_reuses():
    ctx, pool = _pool(mode="pooled", qp_per_tenant=1, cm_base_s=0.002)
    _, d0 = pool.acquire(0, "t0")
    assert d0 >= 0.002 and pool.qps_created == 1
    for _ in range(5):
        _, delay = pool.acquire(0, "t0")
        assert delay == 0.0
    assert pool.qps_created == 1
    assert pool.qp_reuses == 5


def test_per_job_mode_queues_on_the_serial_cm():
    ctx, pool = _pool(mode="per-job", cm_rate=10.0, cm_base_s=0.001)
    delays = [pool.acquire(0, "t0")[1] for _ in range(4)]
    # Same-instant creations serialize at 1/cm_rate spacing.
    assert delays == pytest.approx([0.001, 0.101, 0.201, 0.301])
    assert pool.qps_created == 4
    assert pool.cm_delay_max == pytest.approx(0.301)


def test_cache_thrash_derates_only_past_the_cache():
    ctx, pool = _pool(mode="per-job", qp_cache=4, thrash_floor=0.1)
    derates = [pool.acquire(0, f"t{i}")[0] for i in range(8)]
    assert derates[:4] == [1.0] * 4
    assert derates[4] == pytest.approx(4 / 5)
    assert derates[7] == pytest.approx(4 / 8)
    assert pool.thrashed_jobs == 4
    assert pool.peak_active_qps == 8


def test_thrash_derate_floors():
    ctx, pool = _pool(mode="per-job", qp_cache=2, thrash_floor=0.5)
    for i in range(8):
        derate, _ = pool.acquire(0, f"t{i}")
    assert derate == 0.5  # 2/8 would be 0.25; the floor holds


def test_pooled_census_counts_at_most_the_pool_per_tenant():
    ctx, pool = _pool(mode="pooled", qp_per_tenant=2, qp_cache=4)
    for _ in range(10):
        derate, _ = pool.acquire(0, "t0")
    # 10 running jobs multiplex 2 pooled QPs: never past the cache.
    assert derate == 1.0
    assert pool.peak_active_qps == 2
    pool.release(0, "t0")
    assert pool._nics[0].active["t0"] == 9


def test_release_keeps_pooled_qps_warm():
    ctx, pool = _pool(mode="pooled", qp_per_tenant=1)
    pool.acquire(0, "t0")
    pool.release(0, "t0")
    _, delay = pool.acquire(0, "t0")
    assert delay == 0.0  # no new CM exchange: the pool entry survived
    assert pool.qps_created == 1


# -- the fabric end to end -------------------------------------------------

def _small_spec(**over):
    kw = dict(n_pods=2, hosts_per_pod=2, n_wan_links=1, wan_gbps=20.0,
              elephants_per_pod=1, elephant_gbps=2.0, rate_per_host=4.0,
              size_mean_mib=32.0, wan_tenants=2, serve_s=2.0, horizon_s=3.0)
    kw.update(over)
    return FabricSpec(**kw)


def test_fabric_routes_wan_tenants_over_the_cut():
    result = run_fabric(_small_spec(), seed=3, fixed_rounds=2)
    for cell in result["cells"]:
        assert cell["wan_jobs"] > 0
        assert cell["wan_bytes"] > 0
        assert cell["completed"] > cell["wan_jobs"]  # local jobs too
    assert result["exchange"]["boundaries"]["wan0"]["bytes"] > 0


def test_fabric_job_accounting_conserves():
    result = run_fabric(_small_spec(), seed=3, fixed_rounds=2)
    for cell in result["cells"]:
        assert cell["submitted"] == (
            cell["completed"] + cell["shed"] + cell["cancelled"]
            + cell["queued"] + cell["running"])


def test_fabric_qp_mode_off_disables_the_model():
    result = run_fabric(_small_spec(qp_mode="off"), seed=3, fixed_rounds=2)
    assert all(cell["qpool"] is None for cell in result["cells"])


def test_fabric_pooled_beats_per_job_on_identical_streams():
    pooled = run_fabric(_small_spec(qp_mode="pooled"), seed=3,
                        fixed_rounds=2)
    perjob = run_fabric(_small_spec(qp_mode="per-job"), seed=3,
                        fixed_rounds=2)
    ps = sum(c["submitted"] for c in pooled["cells"])
    js = sum(c["submitted"] for c in perjob["cells"])
    assert ps == js  # same seed -> same arrivals
    assert (sum(c["qpool"]["qps_created"] for c in pooled["cells"])
            < sum(c["qpool"]["qps_created"] for c in perjob["cells"]))


# -- ext-fleet plumbing ----------------------------------------------------

def test_fleet_sizes_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_FLEET_HOSTS", "128, 512")
    assert ext_fleet.fleet_sizes(quick=True) == (128, 512)
    monkeypatch.setenv("REPRO_FLEET_HOSTS", "12x")
    with pytest.raises(ValueError, match="REPRO_FLEET_HOSTS"):
        ext_fleet.fleet_sizes()
    monkeypatch.setenv("REPRO_FLEET_HOSTS", "-4")
    with pytest.raises(ValueError, match="REPRO_FLEET_HOSTS"):
        ext_fleet.fleet_sizes()
    monkeypatch.delenv("REPRO_FLEET_HOSTS")
    assert ext_fleet.fleet_sizes(quick=True) == (16, 32)
    assert ext_fleet.fleet_sizes(quick=False) == (128, 512, 2048)


def test_fleet_leg_rejects_indivisible_hosts():
    from repro.core.experiments.fleet_legs import fleet_leg
    with pytest.raises(ValueError, match="divisible"):
        fleet_leg(seed=0, cal=None, hosts=20, qp_mode="pooled",
                  rate_per_host=1.0, size_mean_mib=32.0, hosts_per_pod=8)


def test_ext_fleet_quick_report_is_clean():
    report = ext_fleet.run(quick=True, seed=0)
    assert report.all_ok, report.render()
