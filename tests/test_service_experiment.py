"""The ext-service experiment: planning, determinism, env overrides."""

import json

import pytest

from repro.core.experiments import ext_service
from repro.core.experiments.service_legs import service_leg
from repro.exec import run_tasks


def test_plan_shape():
    tasks = ext_service.plan(quick=True, seed=0)
    # 2 fleet sizes x 2 policies + fifo + chaos
    assert len(tasks) == 6
    labels = [t.label for t in tasks]
    assert labels == [
        "service/numa-aware-x1", "service/numa-blind-x1",
        "service/numa-aware-x2", "service/numa-blind-x2",
        "service/fifo-x2", "service/chaos-x1",
    ]
    # policy pairs share a seed: the job streams must be identical
    assert tasks[0].seed == tasks[1].seed
    assert tasks[2].seed == tasks[3].seed
    assert tasks[5].params["faults"].startswith("link-down@link:0")


def test_plan_identities_are_stable():
    a = [t.identity() for t in ext_service.plan(quick=True, seed=0)]
    b = [t.identity() for t in ext_service.plan(quick=True, seed=0)]
    assert a == b
    assert len(set(a)) == len(a)  # no colliding cache keys


def test_leg_is_deterministic_per_seed():
    """The service-smoke CI determinism gate, in miniature."""
    kw = dict(seed=7, cal=None, hosts=1, policy="numa-aware",
              rate_per_host=40.0, duration=4.0)
    a = service_leg(**kw)
    b = service_leg(**kw)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert a["completed"] > 0


def test_policies_share_the_job_stream_but_not_placement():
    kw = dict(seed=3, cal=None, hosts=1, rate_per_host=40.0, duration=4.0)
    aware = service_leg(policy="numa-aware", **kw)
    blind = service_leg(policy="numa-blind", **kw)
    assert aware["submitted"] == blind["submitted"]
    assert aware["remote_placements"] == 0
    assert blind["remote_placements"] > 0


def test_quick_report_reproduces_and_caches():
    report = ext_service.run(quick=True, seed=0)
    assert report.all_ok
    # re-running the same plan hits identical task identities
    tasks = ext_service.plan(quick=True, seed=0)
    results = run_tasks(tasks)
    again = ext_service.assemble(results, quick=True, seed=0)
    assert again.render() == report.render()


def test_policy_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_POLICY", "fifo")
    assert ext_service.baseline_policy() == "fifo"
    tasks = ext_service.plan(quick=True, seed=0)
    assert "service/fifo-x1" in [t.label for t in tasks]
    monkeypatch.setenv("REPRO_SERVICE_POLICY", "nope")
    with pytest.raises(ValueError):
        ext_service.baseline_policy()


def test_arrival_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_ARRIVAL", "12.5")
    assert ext_service.arrival_rate() == 12.5
    tasks = ext_service.plan(quick=True, seed=0)
    assert tasks[0].params["rate_per_host"] == 12.5
    monkeypatch.setenv("REPRO_SERVICE_ARRIVAL", "-3")
    with pytest.raises(ValueError):
        ext_service.arrival_rate()
    monkeypatch.setenv("REPRO_SERVICE_ARRIVAL", "fast")
    with pytest.raises(ValueError):
        ext_service.arrival_rate()


def test_env_overrides_change_cache_identity(monkeypatch):
    base = [t.identity() for t in ext_service.plan(quick=True, seed=0)]
    monkeypatch.setenv("REPRO_SERVICE_ARRIVAL", "20")
    changed = [t.identity() for t in ext_service.plan(quick=True, seed=0)]
    assert base != changed
