"""The tutorial's code blocks all execute (docs that cannot rot)."""

import pathlib
import re

TUTORIAL = pathlib.Path(__file__).parent.parent / "docs" / "TUTORIAL.md"


def extract_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tutorial_has_blocks():
    blocks = extract_blocks(TUTORIAL.read_text())
    assert len(blocks) >= 5


def test_tutorial_blocks_execute_in_order():
    namespace: dict = {}
    for i, block in enumerate(extract_blocks(TUTORIAL.read_text())):
        try:
            exec(compile(block, f"TUTORIAL.md[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"tutorial block {i} failed: {type(exc).__name__}: {exc}\n{block}"
            ) from exc
