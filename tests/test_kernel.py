"""Tests for the OS model: accounting, NUMA policy, pages, work compiler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import Machine, Nic, NicKind
from repro.kernel import (
    CpuAccounting,
    NumaPolicy,
    PathSpec,
    SimProcess,
    WorkItem,
    build_thread_path,
    numactl,
    place_region,
)
from repro.kernel.interrupts import irq_path
from repro.kernel.numa import NumaPolicyKind
from repro.kernel.pages import PAGE_SIZE, remote_fraction
from repro.kernel.work import merge_paths
from repro.sim.context import Context


def ctx():
    return Context.create(seed=3)


def machine(c=None):
    return Machine(c or ctx(), "m", n_sockets=2, cores_per_socket=8,
                   pcie_sockets=(0,))


# --- accounting --------------------------------------------------------------


def test_accounting_accumulates():
    acc = CpuAccounting("t")
    acc.add("copy", 1.5)
    acc.add("copy", 0.5)
    acc.add("sys_proto", 1.0)
    assert acc.total_seconds == pytest.approx(3.0)
    assert acc.seconds_by_category()["copy"] == pytest.approx(2.0)


def test_accounting_negative_rejected():
    acc = CpuAccounting("t")
    with pytest.raises(ValueError):
        acc.add("copy", -1.0)


def test_accounting_usr_sys_split():
    acc = CpuAccounting("t")
    acc.add("usr_proto", 1.0)
    acc.add("load", 2.0)
    acc.add("sys_proto", 3.0)
    acc.add("copy", 4.0)
    acc.add("irq", 5.0)
    assert acc.user_seconds() == pytest.approx(3.0)
    assert acc.system_seconds() == pytest.approx(12.0)


def test_accounting_windowed_utilization():
    acc = CpuAccounting("t")
    acc.add("copy", 10.0)
    acc.begin_window(now=100.0)
    acc.add("copy", 5.0)
    util = acc.utilization(now=110.0)
    # 5 core-seconds over 10 wall seconds = 50% of one core
    assert util["copy"] == pytest.approx(50.0)
    assert acc.total_utilization(now=110.0) == pytest.approx(50.0)


def test_accounting_merged():
    a, b = CpuAccounting("a"), CpuAccounting("b")
    a.add("copy", 1.0)
    b.add("copy", 2.0)
    b.add("irq", 3.0)
    m = a.merged([b])
    assert m.seconds_by_category() == {"copy": 3.0, "irq": 3.0}


def test_account_is_charge_target():
    acc = CpuAccounting("t")
    target = acc.account("load")
    target.add(0.25)
    assert acc.seconds_by_category()["load"] == 0.25


# --- NUMA policy ---------------------------------------------------------------


def test_default_policy_spreads_execution():
    p = NumaPolicy.default()
    assert p.execution_fractions(2) == {0: 0.5, 1: 0.5}


def test_bind_policy_pins_execution():
    p = NumaPolicy.bind(1)
    assert p.execution_fractions(2) == {1: 1.0}


def test_bind_policy_multi_node():
    p = NumaPolicy.bind(0, 1)
    assert p.execution_fractions(2) == {0: 0.5, 1: 0.5}


def test_policy_requires_nodes():
    with pytest.raises(ValueError):
        NumaPolicy(NumaPolicyKind.BIND, ())
    with pytest.raises(ValueError):
        NumaPolicy(NumaPolicyKind.PREFERRED, (0, 1))


def test_allocation_first_touch():
    p = NumaPolicy.default()
    assert p.allocation_fractions(2, touch_node=1) == {1: 1.0}
    assert p.allocation_fractions(2, touch_node=None) == {0: 0.5, 1: 0.5}


def test_allocation_interleave():
    p = NumaPolicy.interleave(0, 1)
    assert p.allocation_fractions(2) == {0: 0.5, 1: 0.5}


def test_policy_nodes_outside_machine_rejected():
    p = NumaPolicy.bind(3)
    with pytest.raises(ValueError):
        p.execution_fractions(2)


def test_numactl_binding():
    proc = SimProcess(machine(), "tgt")
    numactl(proc, cpunodebind=[1], membind=[1])
    assert proc.cpu_policy == NumaPolicy.bind(1)
    assert proc.mem_policy == NumaPolicy.bind(1)


def test_numactl_interleave_membind_conflict():
    proc = SimProcess(machine(), "tgt")
    with pytest.raises(ValueError):
        numactl(proc, membind=[0], interleave=[0, 1])


# --- pages ---------------------------------------------------------------------


def test_place_region_bound():
    placement = place_region(1 << 20, NumaPolicy.bind(1), n_nodes=2)
    assert placement.node_fractions() == {1: 1.0}
    assert placement.dominant_node() == 1


def test_place_region_default_migrating():
    placement = place_region(1 << 20, NumaPolicy.default(), n_nodes=2)
    assert placement.node_fractions() == {0: 0.5, 1: 0.5}


def test_place_region_first_touch():
    placement = place_region(
        1 << 20, NumaPolicy.default(), n_nodes=2, touch_node=0
    )
    assert placement.node_fractions() == {0: 1.0}


def test_remote_fraction():
    placement = place_region(1 << 20, NumaPolicy.interleave(0, 1), n_nodes=2)
    assert remote_fraction(placement, 0) == pytest.approx(0.5)
    bound = place_region(1 << 20, NumaPolicy.bind(0), n_nodes=2)
    assert remote_fraction(bound, 0) == 0.0
    assert remote_fraction(bound, 1) == 1.0


def test_page_nodes_match_fractions():
    placement = place_region(100 * PAGE_SIZE, NumaPolicy.interleave(0, 1), 2)
    nodes = placement.page_nodes()
    assert len(nodes) == 100
    assert np.sum(nodes == 0) == 50
    assert np.sum(nodes == 1) == 50


def test_page_nodes_shuffled_reproducible():
    placement = place_region(64 * PAGE_SIZE, NumaPolicy.interleave(0, 1), 2)
    r1 = np.random.default_rng(5)
    r2 = np.random.default_rng(5)
    assert (placement.page_nodes(r1) == placement.page_nodes(r2)).all()


def test_placement_fraction_validation():
    from repro.kernel.pages import RegionPlacement

    with pytest.raises(ValueError):
        RegionPlacement(100, ((0, 0.5), (1, 0.2)))


# --- work compiler ----------------------------------------------------------------


def test_build_path_cpu_cap_is_serial_rate():
    m = machine()
    proc = SimProcess(m, "p", cpu_policy=NumaPolicy.bind(0))
    t = proc.spawn_thread()
    items = [
        WorkItem("copy", cpu_per_byte=1e-9, category="copy"),
        WorkItem("proto", cpu_per_byte=3e-9, category="sys_proto"),
    ]
    spec = build_thread_path(t, items)
    assert spec.cap == pytest.approx(1.0 / 4e-9)


def test_build_path_team_scales_cap():
    m = machine()
    proc = SimProcess(m, "p", cpu_policy=NumaPolicy.bind(0))
    t = proc.spawn_thread()
    spec = build_thread_path(
        t, [WorkItem("x", cpu_per_byte=1e-9)], n_threads=4
    )
    assert spec.cap == pytest.approx(4.0 / 1e-9)


def test_build_path_bound_thread_charges_one_node():
    m = machine()
    proc = SimProcess(m, "p", cpu_policy=NumaPolicy.bind(1))
    t = proc.spawn_thread()
    spec = build_thread_path(t, [WorkItem("x", cpu_per_byte=2e-9)])
    cpu_entries = [(r, w) for r, w in spec.path if r is m.cpu_resource(1)]
    assert cpu_entries == [(m.cpu_resource(1), 2e-9)]
    assert not any(r is m.cpu_resource(0) for r, _ in spec.path)


def test_build_path_default_thread_splits_nodes():
    m = machine()
    proc = SimProcess(m, "p")  # default policy
    t = proc.spawn_thread()
    spec = build_thread_path(t, [WorkItem("x", cpu_per_byte=2e-9)])
    weights = {r.name: w for r, w in spec.path}
    assert weights[m.cpu_resource(0).name] == pytest.approx(1e-9)
    assert weights[m.cpu_resource(1).name] == pytest.approx(1e-9)


def test_build_path_mem_traffic_local():
    m = machine()
    proc = SimProcess(m, "p", cpu_policy=NumaPolicy.bind(0))
    t = proc.spawn_thread()
    item = WorkItem(
        "copy",
        cpu_per_byte=1e-9,
        mem_traffic=(WorkItem.mem({0: 1.0}, 3.0),),
    )
    spec = build_thread_path(t, [item])
    mem_w = sum(w for r, w in spec.path if r is m.mem_bank(0).bandwidth)
    assert mem_w == pytest.approx(3.0)


def test_build_path_mem_traffic_remote_crosses_qpi():
    m = machine()
    proc = SimProcess(m, "p", cpu_policy=NumaPolicy.bind(0))
    t = proc.spawn_thread()
    item = WorkItem(
        "read", mem_traffic=(WorkItem.mem({1: 1.0}, 1.0),), cpu_per_byte=1e-10
    )
    spec = build_thread_path(t, [item])
    assert any(r is m.qpi(0, 1) for r, w in spec.path)


def test_build_path_per_op_cost_amortized():
    m = machine()
    proc = SimProcess(m, "p", cpu_policy=NumaPolicy.bind(0))
    t = proc.spawn_thread()
    item = WorkItem("ctrl", cpu_per_byte=1e-9, per_op_cpu=1e-6)
    small = build_thread_path(t, [item], op_size=1e3)
    large = build_thread_path(t, [item], op_size=1e6)
    assert small.cap < large.cap  # small ops pay more per byte


def test_build_path_per_op_requires_size():
    m = machine()
    t = SimProcess(m, "p").spawn_thread()
    with pytest.raises(ValueError, match="op_size"):
        build_thread_path(t, [WorkItem("c", per_op_cpu=1e-6)])


def test_build_path_charges_accounting():
    m = machine()
    proc = SimProcess(m, "p", cpu_policy=NumaPolicy.bind(0))
    t = proc.spawn_thread()
    spec = build_thread_path(t, [WorkItem("x", cpu_per_byte=1e-9, category="copy")])
    (account, per_byte), = spec.charges
    account.add(per_byte * 1e9)  # simulate 1 GB moved
    assert t.accounting.seconds_by_category()["copy"] == pytest.approx(1.0)


def test_merge_paths_takes_min_cap():
    a = PathSpec(cap=10.0)
    b = PathSpec(cap=5.0)
    c = merge_paths(a, b)
    assert c.cap == 5.0


def test_irq_path_tuned_vs_untuned():
    m = machine()
    nic = Nic(m, m.pcie_slots[0], NicKind.ROCE_QDR)
    acc = CpuAccounting("irq")
    tuned = irq_path(nic, acc, tuned=True, rate_per_core=1e10)
    untuned = irq_path(nic, acc, tuned=False, rate_per_core=1e10)
    assert len(tuned.path) == 1
    assert tuned.path[0][0] is m.cpu_resource(nic.node)
    assert len(untuned.path) == 2


# --- property: execution fractions always sum to 1 -----------------------------


@given(
    st.sampled_from(["default", "bind0", "bind1", "bind01", "interleave"]),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50, deadline=None)
def test_execution_fractions_normalized(kind, n_nodes):
    if kind == "default":
        p = NumaPolicy.default()
    elif kind == "bind0":
        p = NumaPolicy.bind(0)
    elif kind == "bind1":
        if n_nodes < 2:
            return
        p = NumaPolicy.bind(1)
    elif kind == "bind01":
        if n_nodes < 2:
            return
        p = NumaPolicy.bind(0, 1)
    else:
        p = NumaPolicy.interleave(*range(n_nodes))
    fracs = p.execution_fractions(n_nodes)
    assert sum(fracs.values()) == pytest.approx(1.0)
    alloc = p.allocation_fractions(n_nodes)
    assert sum(alloc.values()) == pytest.approx(1.0)
