"""The benchmark regression gate fails loudly, never silently.

``scripts/check_bench_regression.py`` is CI's last line of defence: a
corrupt baseline or an ungated result file must fail the build with the
benchmark's name in the output, not degrade into a skipped comparison.
These tests drive the script in-process (``main(argv)``) against
temporary result/baseline trees.
"""

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (pathlib.Path(__file__).resolve().parent.parent
           / "scripts" / "check_bench_regression.py")

_spec = importlib.util.spec_from_file_location("check_bench_regression",
                                               _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _result(events_per_sec=1000.0, all_ok=True, checks=()):
    return {
        "all_ok": all_ok,
        "events_per_sec": events_per_sec,
        "checks": list(checks),
    }


def _write(path: pathlib.Path, data) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data) if not isinstance(data, str) else data)


@pytest.fixture
def tree(tmp_path):
    """Matching baseline/fresh pair for one healthy benchmark."""
    baselines = tmp_path / "baselines"
    results = tmp_path / "results"
    _write(baselines / "fig99.json", _result())
    _write(results / "fig99.json", _result())
    return baselines, results


def _run(baselines, results, capsys):
    rc = gate.main(["--baselines", str(baselines), "--results", str(results)])
    return rc, capsys.readouterr().out


def test_gate_passes_on_matching_tree(tree, capsys):
    baselines, results = tree
    rc, out = _run(baselines, results, capsys)
    assert rc == 0
    assert "OK" in out


def test_malformed_baseline_fails_and_names_benchmark(tree, capsys):
    baselines, results = tree
    _write(baselines / "fig99.json", "{not json")
    rc, out = _run(baselines, results, capsys)
    assert rc != 0
    assert "fig99" in out
    assert "malformed baseline" in out


def test_malformed_fresh_result_fails_and_names_benchmark(tree, capsys):
    baselines, results = tree
    _write(results / "fig99.json", '["a", "list"]')
    rc, out = _run(baselines, results, capsys)
    assert rc != 0
    assert "fig99" in out
    assert "malformed fresh result" in out


def test_result_without_baseline_fails_and_names_benchmark(tree, capsys):
    baselines, results = tree
    _write(results / "fig42.json", _result())
    rc, out = _run(baselines, results, capsys)
    assert rc != 0
    assert "fig42" in out
    assert "no committed baseline" in out


def test_missing_fresh_result_fails_and_names_benchmark(tree, capsys):
    baselines, results = tree
    (results / "fig99.json").unlink()
    rc, out = _run(baselines, results, capsys)
    assert rc != 0
    assert "fig99" in out
    assert "no fresh result" in out


def test_empty_baselines_dir_is_a_bad_invocation(tmp_path, capsys):
    baselines = tmp_path / "baselines"
    baselines.mkdir()
    results = tmp_path / "results"
    results.mkdir()
    rc, out = _run(baselines, results, capsys)
    assert rc == 2
    assert "no baselines" in out


def test_perf_regression_still_fails(tree, capsys):
    baselines, results = tree
    _write(results / "fig99.json", _result(events_per_sec=100.0))
    rc, out = _run(baselines, results, capsys)
    assert rc == 1
    assert "regressed" in out


def test_check_drift_still_fails(tree, capsys):
    baselines, results = tree
    check_b = {"metric": "goodput", "measured": 10, "ok": True}
    check_f = {"metric": "goodput", "measured": 11, "ok": True}
    _write(baselines / "fig99.json", _result(checks=[check_b]))
    _write(results / "fig99.json", _result(checks=[check_f]))
    rc, out = _run(baselines, results, capsys)
    assert rc == 1
    assert "drifted" in out
