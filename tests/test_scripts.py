"""The benchmark regression gate fails loudly, never silently.

``scripts/check_bench_regression.py`` is CI's last line of defence: a
corrupt baseline or an ungated result file must fail the build with the
benchmark's name in the output, not degrade into a skipped comparison.
These tests drive the script in-process (``main(argv)``) against
temporary result/baseline trees.  ``scripts/bench_summary.py`` — the
folded ``BENCH_report.json`` CI artifact — gets the same treatment.
"""

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (pathlib.Path(__file__).resolve().parent.parent
           / "scripts" / "check_bench_regression.py")

_spec = importlib.util.spec_from_file_location("check_bench_regression",
                                               _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _result(events_per_sec=1000.0, all_ok=True, checks=()):
    return {
        "all_ok": all_ok,
        "events_per_sec": events_per_sec,
        "checks": list(checks),
    }


def _write(path: pathlib.Path, data) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data) if not isinstance(data, str) else data)


@pytest.fixture
def tree(tmp_path):
    """Matching baseline/fresh pair for one healthy benchmark."""
    baselines = tmp_path / "baselines"
    results = tmp_path / "results"
    _write(baselines / "fig99.json", _result())
    _write(results / "fig99.json", _result())
    return baselines, results


def _run(baselines, results, capsys):
    rc = gate.main(["--baselines", str(baselines), "--results", str(results)])
    return rc, capsys.readouterr().out


def test_gate_passes_on_matching_tree(tree, capsys):
    baselines, results = tree
    rc, out = _run(baselines, results, capsys)
    assert rc == 0
    assert "OK" in out


def test_malformed_baseline_fails_and_names_benchmark(tree, capsys):
    baselines, results = tree
    _write(baselines / "fig99.json", "{not json")
    rc, out = _run(baselines, results, capsys)
    assert rc != 0
    assert "fig99" in out
    assert "malformed baseline" in out


def test_malformed_fresh_result_fails_and_names_benchmark(tree, capsys):
    baselines, results = tree
    _write(results / "fig99.json", '["a", "list"]')
    rc, out = _run(baselines, results, capsys)
    assert rc != 0
    assert "fig99" in out
    assert "malformed fresh result" in out


def test_result_without_baseline_fails_and_names_benchmark(tree, capsys):
    baselines, results = tree
    _write(results / "fig42.json", _result())
    rc, out = _run(baselines, results, capsys)
    assert rc != 0
    assert "fig42" in out
    assert "no committed baseline" in out


def test_missing_fresh_result_fails_and_names_benchmark(tree, capsys):
    baselines, results = tree
    (results / "fig99.json").unlink()
    rc, out = _run(baselines, results, capsys)
    assert rc != 0
    assert "fig99" in out
    assert "no fresh result" in out


def test_empty_baselines_dir_is_a_bad_invocation(tmp_path, capsys):
    baselines = tmp_path / "baselines"
    baselines.mkdir()
    results = tmp_path / "results"
    results.mkdir()
    rc, out = _run(baselines, results, capsys)
    assert rc == 2
    assert "no baselines" in out


def test_perf_regression_still_fails(tree, capsys):
    baselines, results = tree
    _write(results / "fig99.json", _result(events_per_sec=100.0))
    rc, out = _run(baselines, results, capsys)
    assert rc == 1
    assert "regressed" in out


def test_folded_report_is_not_gated(tree, capsys):
    # bench_summary.py's fold lands next to the results; it is an
    # artifact over them, not an ungated benchmark.
    baselines, results = tree
    _write(results / "BENCH_report.json", {"benchmarks": [], "totals": {}})
    rc, out = _run(baselines, results, capsys)
    assert rc == 0


def test_check_drift_still_fails(tree, capsys):
    baselines, results = tree
    check_b = {"metric": "goodput", "measured": 10, "ok": True}
    check_f = {"metric": "goodput", "measured": 11, "ok": True}
    _write(baselines / "fig99.json", _result(checks=[check_b]))
    _write(results / "fig99.json", _result(checks=[check_f]))
    rc, out = _run(baselines, results, capsys)
    assert rc == 1
    assert "drifted" in out


# --- bench_summary: the folded CI artifact -------------------------------------

_SUMMARY = _SCRIPT.parent / "bench_summary.py"
_sspec = importlib.util.spec_from_file_location("bench_summary", _SUMMARY)
summary = importlib.util.module_from_spec(_sspec)
_sspec.loader.exec_module(summary)


def _summary_run(results, output, capsys):
    rc = summary.main(["--results", str(results), "-o", str(output)])
    return rc, capsys.readouterr()


def test_summary_folds_results_and_surfaces_speedup(tmp_path, capsys):
    results = tmp_path / "results"
    _write(results / "fig99.json",
           _result(checks=[{"metric": "goodput", "ok": True}]) |
           {"name": "fig99", "wall_seconds": 1.5})
    _write(results / "churn99.json",
           _result() | {"name": "churn99", "wall_seconds": 0.5,
                        "speedup": 4.2})
    out_path = tmp_path / "BENCH_report.json"
    rc, cap = _summary_run(results, out_path, capsys)
    assert rc == 0
    report = json.loads(out_path.read_text())
    rows = {r["name"]: r for r in report["benchmarks"]}
    assert set(rows) == {"fig99", "churn99"}
    assert rows["churn99"]["speedup"] == 4.2
    assert "speedup" not in rows["fig99"]
    assert report["totals"] == {
        "benchmarks": 2, "wall_seconds": 2.0, "all_ok": True,
        "checks_total": 1, "checks_failed": 0}
    assert "2 benchmarks" in cap.out


def test_summary_rerun_skips_its_own_output(tmp_path, capsys):
    results = tmp_path / "results"
    _write(results / "fig99.json", _result() | {"wall_seconds": 1.0})
    out_path = results / "BENCH_report.json"
    for _ in range(2):  # second pass must not ingest the report itself
        rc, _cap = _summary_run(results, out_path, capsys)
        assert rc == 0
    report = json.loads(out_path.read_text())
    assert report["totals"]["benchmarks"] == 1


def test_summary_flags_malformed_result_but_still_reports(tmp_path, capsys):
    results = tmp_path / "results"
    _write(results / "fig99.json", _result() | {"wall_seconds": 1.0})
    _write(results / "broken.json", "{not json")
    out_path = tmp_path / "BENCH_report.json"
    rc, cap = _summary_run(results, out_path, capsys)
    assert rc == 1
    assert "broken.json" in cap.err
    assert json.loads(out_path.read_text())["totals"]["benchmarks"] == 1


def test_summary_empty_results_dir_is_an_error(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    rc, cap = _summary_run(results, tmp_path / "out.json", capsys)
    assert rc == 2
    assert "no benchmark results" in cap.err
