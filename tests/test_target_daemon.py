"""Tests for the event-level target daemon (queueing behaviour)."""

import numpy as np
import pytest

from repro.hw import backend_lan_host, frontend_lan_host
from repro.kernel import NumaPolicy, place_region
from repro.net.topology import wire_san
from repro.sim.context import Context
from repro.storage import IserInitiator, IserTarget
from repro.storage.daemon import QueuedCommand, TargetDaemon
from repro.util.units import MIB


def build(seed=91, n_workers=2, queue_depth=128):
    c = Context.create(seed=seed)
    front = frontend_lan_host(c, "front", with_ib=True)
    back = backend_lan_host(c, "back")
    wire_san(c, front, back)
    target = IserTarget(c, back, tuning="numa", n_links=2)
    target.create_lun(256 * MIB, store_data=True)
    initiator = IserInitiator(c, front, target)
    c.sim.run(until=initiator.login_all())
    session = initiator.sessions[0]
    daemon = TargetDaemon(c, target, session.qp_t, n_workers=n_workers,
                          queue_depth=queue_depth)
    return c, target, initiator, session, daemon


def app_buffer(session, size, fill=None):
    data = np.zeros(size, dtype=np.uint8)
    if fill is not None:
        data[:] = fill
    return session.pd.register(
        place_region(size, NumaPolicy.bind(0), 2), data=data)


def test_single_command_executes_and_moves_bytes():
    c, target, initiator, session, daemon = build()
    lun = target.luns[0]
    mr = app_buffer(session, 1 * MIB, fill=7)
    cmd = QueuedCommand(lun=lun, is_write=True, offset=0, length=1 * MIB,
                        initiator_mr=mr)
    status = c.sim.run(until=daemon.submit(cmd))
    assert status == 0
    assert (lun.data[: 1 * MIB] == 7).all()
    assert cmd.service_time > 0
    assert cmd.queue_wait < 1e-6  # empty queue: picked up immediately


def test_out_of_range_command_checks_condition():
    c, target, initiator, session, daemon = build(seed=92)
    lun = target.luns[0]
    mr = app_buffer(session, 1 * MIB)
    cmd = QueuedCommand(lun=lun, is_write=False, offset=lun.capacity_bytes,
                        length=1 * MIB, initiator_mr=mr)
    status = c.sim.run(until=daemon.submit(cmd))
    assert status == 0x02


def test_saturated_pool_queues_commands():
    """With 1 worker, N commands serialize: mean queue wait grows ~N/2."""
    c, target, initiator, session, daemon = build(seed=93, n_workers=1)
    lun = target.luns[0]
    mr = app_buffer(session, 4 * MIB)
    events = []
    for i in range(8):
        cmd = QueuedCommand(lun=lun, is_write=False, offset=i * 4 * MIB,
                            length=4 * MIB, initiator_mr=mr)
        events.append(daemon.submit(cmd))
    for ev in events:
        c.sim.run(until=ev)
    assert len(daemon.completed) == 8
    service = daemon.mean_service_time()
    wait = daemon.mean_queue_wait()
    # M/D/1 with batch arrival: mean wait = (N-1)/2 * service
    assert wait == pytest.approx(3.5 * service, rel=0.1)


def test_more_workers_cut_queue_wait():
    waits = {}
    for n in (1, 4):
        c, target, initiator, session, daemon = build(seed=94, n_workers=n)
        lun = target.luns[0]
        mr = app_buffer(session, 4 * MIB)
        events = [
            daemon.submit(QueuedCommand(lun=lun, is_write=False,
                                        offset=i * 4 * MIB, length=4 * MIB,
                                        initiator_mr=mr))
            for i in range(8)
        ]
        for ev in events:
            c.sim.run(until=ev)
        waits[n] = daemon.mean_queue_wait()
    assert waits[4] < waits[1] * 0.5


def test_fifo_ordering():
    c, target, initiator, session, daemon = build(seed=95, n_workers=1)
    lun = target.luns[0]
    mr = app_buffer(session, 1 * MIB)
    cmds = [QueuedCommand(lun=lun, is_write=False, offset=0, length=1 * MIB,
                          initiator_mr=mr) for _ in range(5)]
    events = [daemon.submit(cmd) for cmd in cmds]
    for ev in events:
        c.sim.run(until=ev)
    starts = [cmd.started_at for cmd in cmds]
    assert starts == sorted(starts)
    assert [c_.cmd_id for c_ in daemon.completed] == [c_.cmd_id for c_ in cmds]


def test_shutdown_fails_queued_commands():
    c, target, initiator, session, daemon = build(seed=96, n_workers=1)
    lun = target.luns[0]
    mr = app_buffer(session, 4 * MIB)
    events = [
        daemon.submit(QueuedCommand(lun=lun, is_write=False,
                                    offset=0, length=4 * MIB,
                                    initiator_mr=mr))
        for _ in range(4)
    ]
    c.sim.run(until=events[0])  # first completes
    daemon.shutdown()
    with pytest.raises(RuntimeError):
        daemon.submit(QueuedCommand(lun=lun, is_write=False, offset=0,
                                    length=1 * MIB, initiator_mr=mr))
    # drain: in-flight finishes, queued ones fail
    failures = 0
    for ev in events[1:]:
        try:
            c.sim.run(until=ev)
        except RuntimeError:
            failures += 1
    assert failures >= 2
