"""Tests for block devices, tmpfs and the thermally-throttled SSD."""

import numpy as np
import pytest

from repro.hw import Machine
from repro.kernel import NumaPolicy, SimProcess, place_region
from repro.sim.context import Context
from repro.storage import IoRequest, RamDisk, SsdDevice, TmpfsStore
from repro.util.units import GB, MIB


def ctx():
    return Context.create(seed=11)


def machine(c):
    return Machine(c, "m", pcie_sockets=(0,))


# --- IoRequest -------------------------------------------------------------------


def test_iorequest_validation():
    with pytest.raises(ValueError):
        IoRequest(is_write=False, offset=-1, length=10)
    with pytest.raises(ValueError):
        IoRequest(is_write=False, offset=0, length=0)
    with pytest.raises(ValueError):
        IoRequest(
            is_write=True, offset=0, length=10, data=np.zeros(5, dtype=np.uint8)
        )


# --- RamDisk ----------------------------------------------------------------------


def test_ramdisk_read_write_round_trip():
    c = ctx()
    m = machine(c)
    placement = place_region(1 << 20, NumaPolicy.bind(0), m.n_nodes)
    disk = RamDisk(c, "rd", placement, store_data=True)
    payload = np.arange(4096, dtype=np.uint8) % 251

    done = disk.submit(IoRequest(True, offset=512, length=4096, data=payload))
    c.sim.run(until=done)
    out = np.zeros(4096, dtype=np.uint8)
    done = disk.submit(IoRequest(False, offset=512, length=4096, data=out))
    c.sim.run(until=done)
    assert (out == payload).all()
    assert disk.stats["write_ops"] == 1 and disk.stats["read_ops"] == 1


def test_ramdisk_io_beyond_capacity_rejected():
    c = ctx()
    m = machine(c)
    disk = RamDisk(c, "rd", place_region(4096, NumaPolicy.bind(0), m.n_nodes))
    with pytest.raises(ValueError):
        disk.submit(IoRequest(False, offset=0, length=8192))


def test_ramdisk_bulk_path_remote_slower():
    c = ctx()
    m = machine(c)
    local = RamDisk(c, "l", place_region(1 << 20, NumaPolicy.bind(0), 2))
    remote = RamDisk(c, "r", place_region(1 << 20, NumaPolicy.bind(1), 2))
    proc = SimProcess(m, "p", cpu_policy=NumaPolicy.bind(0))
    t = proc.spawn_thread()
    lp = local.bulk_path(False, t, 1 << 20)
    rp = remote.bulk_path(False, t, 1 << 20)
    assert rp.cap < lp.cap  # remote copy is slower per thread
    assert any(r is m.qpi(0, 1) or r is m.qpi(1, 0) for r, _ in rp.path)


def test_ramdisk_timed_copy_speed():
    c = ctx()
    m = machine(c)
    placement = place_region(1 << 30, NumaPolicy.bind(0), 2)
    disk = RamDisk(c, "rd", placement)
    proc = SimProcess(m, "p", cpu_policy=NumaPolicy.bind(0))
    t = proc.spawn_thread()
    done = disk.submit(IoRequest(False, offset=0, length=256 * MIB), thread=t)
    t0 = c.sim.now
    c.sim.run(until=done)
    rate = 256 * MIB / (c.sim.now - t0)
    # one thread copying: near the calibrated local memcpy rate
    assert rate == pytest.approx(c.cal.memcpy_rate_local, rel=0.1)


# --- tmpfs ------------------------------------------------------------------------


def test_tmpfs_create_open_unlink():
    c = ctx()
    m = machine(c)
    store = TmpfsStore(m, 1 << 30, mpol=NumaPolicy.bind(0))
    f = store.create("a", 1 << 20)
    assert store.open("a") is f
    assert store.used_bytes == 1 << 20
    store.unlink("a")
    assert store.used_bytes == 0
    with pytest.raises(FileNotFoundError):
        store.open("a")


def test_tmpfs_mpol_places_files():
    c = ctx()
    m = machine(c)
    store = TmpfsStore(m, 1 << 30, mpol=NumaPolicy.bind(1))
    f = store.create("a", 1 << 20)
    assert f.placement.node_fractions() == {1: 1.0}


def test_tmpfs_remount_affects_new_files():
    c = ctx()
    m = machine(c)
    store = TmpfsStore(m, 1 << 30, mpol=NumaPolicy.bind(0))
    a = store.create("a", 1 << 20)
    store.remount(NumaPolicy.bind(1))
    b = store.create("b", 1 << 20)
    assert a.placement.node_fractions() == {0: 1.0}
    assert b.placement.node_fractions() == {1: 1.0}


def test_tmpfs_enforces_capacity():
    c = ctx()
    m = machine(c)
    store = TmpfsStore(m, 1 << 20)
    store.create("a", 1 << 19)
    with pytest.raises(OSError):
        store.create("b", 1 << 20)


def test_tmpfs_duplicate_name_rejected():
    c = ctx()
    m = machine(c)
    store = TmpfsStore(m, 1 << 20)
    store.create("a", 1024)
    with pytest.raises(FileExistsError):
        store.create("a", 1024)


def test_tmpfs_larger_than_ram_rejected():
    c = ctx()
    m = machine(c)
    with pytest.raises(ValueError):
        TmpfsStore(m, m.total_memory_bytes * 2)


# --- SSD thermal throttling (the §4.1 anecdote) ---------------------------------------


def test_ssd_bursts_then_throttles():
    c = ctx()
    m = machine(c)
    ssd = SsdDevice(
        c,
        "fio-drive",
        capacity_bytes=2_000 * GB,
        burst_rate=1.4e9,
        throttled_rate=0.5e9,
        thermal_budget=20e9,  # scaled down to keep the test fast
    )
    proc = SimProcess(m, "fio", cpu_policy=NumaPolicy.bind(0))
    t = proc.spawn_thread()
    from repro.sim.fluid import FluidFlow

    spec = ssd.bulk_path(is_write=True, thread=t, block_size=4 * MIB)
    flow = FluidFlow(spec.path, size=None, cap=spec.cap,
                     charges=spec.charges, name="fio-stream")
    c.fluid.start(flow)

    c.sim.run(until=10.0)
    c.fluid.settle()
    early_rate = flow.transferred / 10.0
    assert early_rate > 1.2e9  # bursting

    c.sim.run(until=120.0)
    c.fluid.settle()
    assert ssd.throttled
    late = flow.transferred
    c.sim.run(until=150.0)
    c.fluid.settle()
    late_rate = (flow.transferred - late) / 30.0
    assert late_rate == pytest.approx(0.5e9, rel=0.05)  # the paper's ~500 MB/s
    c.fluid.stop(flow)


def test_ssd_recovers_after_idle():
    c = ctx()
    machine(c)
    ssd = SsdDevice(c, "d", capacity_bytes=1_000 * GB, burst_rate=1.4e9,
                    throttled_rate=0.5e9, thermal_budget=10e9)
    done = ssd.submit(IoRequest(True, offset=0, length=30 * GB))
    c.sim.run(until=done)
    assert ssd.throttled
    # idle: heat dissipates, throttle releases
    c.sim.run(until=c.sim.now + 60.0)
    assert not ssd.throttled
    assert ssd.bandwidth.capacity == 1.4e9


def test_ssd_validation():
    c = ctx()
    with pytest.raises(ValueError):
        SsdDevice(c, "d", capacity_bytes=GB, burst_rate=1e9, throttled_rate=2e9)
