"""Tests for the kernel's stats counters and the timeout free list.

Covers ``SimStats`` (engine counters), ``FluidStats`` (allocator
counters), the ``Timeout`` pool, the process-global event counter the
benchmark harness reads, and the measurement plumbing that exposes the
counters (``EventRateProbe``, ``TraceLog.snapshot_stats``,
``HostMonitor.stats_snapshot``).
"""

import pytest

from repro.hw import Machine
from repro.kernel.monitor import HostMonitor
from repro.sim import (
    EventRateProbe,
    FluidFlow,
    FluidResource,
    FluidScheduler,
    SimStats,
    Simulator,
)
from repro.sim.context import Context
from repro.sim.engine import SimulationError
from repro.sim.trace import TraceLog


# --- SimStats ------------------------------------------------------------------


def test_stats_start_at_zero():
    stats = Simulator().stats
    assert isinstance(stats, SimStats)
    assert stats.as_dict() == {
        "events_scheduled": 0,
        "events_processed": 0,
        "heap_peak": 0,
        "timeouts_reused": 0,
        "samples_backfilled": 0,
        "events_skipped": 0,
        "wall_seconds": 0.0,
    }


def test_scheduled_equals_processed_after_drain():
    sim = Simulator()

    def proc():
        for _ in range(20):
            yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    assert sim.stats.events_processed > 20
    assert sim.stats.events_scheduled == sim.stats.events_processed


def test_heap_peak_tracks_simultaneous_schedules():
    sim = Simulator()
    for i in range(7):
        sim.timeout(float(i))
    assert sim.stats.heap_peak == 7
    sim.run()
    # draining never raises the peak
    assert sim.stats.heap_peak == 7


def test_wall_seconds_accumulates_across_runs():
    sim = Simulator()

    def proc():
        for _ in range(100):
            yield sim.timeout(1.0)

    sim.process(proc())
    sim.run(until=50.0)
    first = sim.stats.wall_seconds
    assert first > 0.0
    sim.run()
    assert sim.stats.wall_seconds > first


def test_process_global_event_counter():
    before = Simulator.events_processed_total
    sim = Simulator()
    for i in range(5):
        sim.timeout(float(i))
    sim.run()
    assert Simulator.events_processed_total - before == sim.stats.events_processed == 5


# --- timeout free list ---------------------------------------------------------


def test_timeout_pool_recycles_unreferenced_timeouts():
    sim = Simulator()

    def proc():
        for _ in range(10):
            yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    # after the first timeout is processed, every later one reuses it
    assert sim.stats.timeouts_reused >= 8


def test_timeout_pool_skips_referenced_timeouts():
    sim = Simulator()
    keep = sim.timeout(0.0)
    sim.run()
    assert keep.processed
    later = sim.timeout(0.0)
    assert later is not keep
    assert sim.stats.timeouts_reused == 0


def test_recycled_timeout_state_is_reset():
    sim = Simulator()
    sim.timeout(0.0, value="old")  # deliberately unreferenced
    sim.run()
    reused = sim.timeout(2.0, value="new")
    assert sim.stats.timeouts_reused == 1
    assert not reused.processed
    assert reused.value == "new"
    assert reused.callbacks is None
    got = []
    reused.add_callback(lambda ev: got.append(ev.value))
    sim.run()
    assert got == ["new"]
    assert sim.now == pytest.approx(2.0)


def test_pooled_timeout_still_validates_delay():
    sim = Simulator()
    sim.timeout(0.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


# --- FluidStats ----------------------------------------------------------------


def test_fluid_stats_count_skipped_components():
    # eager mode: each transition rebalances immediately, so the per-call
    # recompute/skip deltas below are observable.
    sim = Simulator()
    sched = FluidScheduler(sim, churn="eager")
    ra = FluidResource(sched, 100.0, "ra")
    rb = FluidResource(sched, 200.0, "rb")
    fa = FluidFlow([(ra, 1.0)], size=None, cap=None, name="fa")
    fb = FluidFlow([(rb, 1.0)], size=None, cap=None, name="fb")
    sched.start(fa)
    sched.start(fb)
    recomputed = sched.stats.flows_recomputed
    skipped = sched.stats.flows_skipped

    # capping fa touches only ra's component; fb's cached rate is reused
    sched.set_cap(fa, 10.0)
    assert sched.stats.flows_recomputed == recomputed + 1
    assert sched.stats.flows_skipped == skipped + 1
    assert fa.rate == pytest.approx(10.0)
    assert fb.rate == pytest.approx(200.0)

    snap = sched.stats.as_dict()
    assert snap["rebalances"] >= snap["allocations"] >= 1


# --- measurement plumbing ------------------------------------------------------


def test_event_rate_probe_records_rate():
    sim = Simulator()
    probe = EventRateProbe(sim, interval=1.0)

    def ticker():
        while True:
            yield sim.timeout(0.1)

    sim.process(ticker())
    sim.run(until=5.0)
    series = probe.stop()
    assert len(series) == 5
    assert all(v > 0 for v in series.values)
    # ~10 timeouts + ~1 probe sample per simulated second
    assert series.mean() == pytest.approx(11.0, rel=0.3)


def test_tracelog_snapshot_stats():
    sim = Simulator()
    log = TraceLog(sim)
    for i in range(4):
        sim.timeout(float(i))
    sim.run()
    log.snapshot_stats()
    (rec,) = log.filter("sim-stats")
    fields = dict(rec.fields)
    assert fields == sim.stats.as_dict()
    assert fields["events_processed"] == 4


def test_host_monitor_samples_event_rate_and_snapshots():
    ctx = Context.create(seed=5)
    m = Machine(ctx, "m")
    monitor = HostMonitor(m, interval=1.0)
    flow = FluidFlow([(m.mem_bank(0).bandwidth, 1.0)], size=None, name="burn")
    ctx.fluid.start(flow)

    def ticker():
        # Kernel self-measurement needs actual kernel events: the backfill
        # sampler schedules none of its own, so drive some dynamics.
        while True:
            yield ctx.sim.timeout(0.25)

    ctx.sim.process(ticker())
    ctx.sim.run(until=5.0)
    assert len(monitor.events) == 5
    assert sum(monitor.events.values) > 0

    snap = monitor.stats_snapshot()
    assert snap["events_processed"] == ctx.sim.stats.events_processed
    assert snap["fluid_rebalances"] == ctx.fluid.stats.rebalances >= 1
    assert set(ctx.sim.stats.as_dict()) <= set(snap)
    ctx.fluid.stop(flow)
    monitor.stop()
