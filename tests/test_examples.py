"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; a broken example is a broken
promise.  Each runs in-process (runpy) with stdout captured.
"""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    p.name for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_all_examples_discovered():
    assert EXAMPLES == [
        "datacenter_sync.py",
        "failure_drill.py",
        "numa_effects.py",
        "quickstart.py",
        "verified_transfer.py",
        "wan_tuning.py",
    ]


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    path = pathlib.Path(__file__).parent.parent / "examples" / name
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # said something substantive
    assert "Traceback" not in out
