"""Tests for the RFTP client/server session layer (put/get/resume)."""

import numpy as np
import pytest

from repro.apps.rftp import RftpClient, RftpServer
from repro.datapath.integrity import StreamingDigest
from repro.fs import O_RDONLY, O_RDWR, XfsFileSystem
from repro.hw import Machine, Nic, NicKind
from repro.kernel import NumaPolicy, place_region
from repro.net.link import connect
from repro.sim.context import Context
from repro.storage import RamDisk
from repro.util.units import MIB


def env(seed=1, disk_size=128 * MIB):
    ctx = Context.create(seed=seed)
    a = Machine(ctx, "client-host", pcie_sockets=(0,))
    b = Machine(ctx, "server-host", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    connect(na, nb)
    src_fs = XfsFileSystem(ctx, RamDisk(
        ctx, "src", place_region(disk_size, NumaPolicy.bind(0), 2),
        store_data=True))
    dst_fs = XfsFileSystem(ctx, RamDisk(
        ctx, "dst", place_region(disk_size, NumaPolicy.bind(0), 2),
        store_data=True))
    server = RftpServer(ctx, nb, dst_fs)
    client = RftpClient(ctx, na, src_fs, server)
    return ctx, client, server, src_fs, dst_fs


def make_file(ctx, fs, path, size, seed=0):
    rng = np.random.default_rng(seed)
    payload = rng.integers(0, 256, size).astype(np.uint8)
    fs.create(path, size)
    ctx.sim.run(until=fs.open(path, O_RDWR).write(payload))
    return payload


def test_put_records_manifest():
    ctx, client, server, src_fs, dst_fs = env()
    payload = make_file(ctx, src_fs, "a.bin", 3 * MIB)
    rec = ctx.sim.run(until=client.put("a.bin"))
    assert rec.path == "a.bin"
    assert rec.size == 3 * MIB
    assert rec.digest_hex == StreamingDigest().update(payload).hexdigest()
    assert server.has_complete("a.bin", 3 * MIB)


def test_put_skips_already_complete_file():
    ctx, client, server, src_fs, dst_fs = env(seed=2)
    make_file(ctx, src_fs, "a.bin", 2 * MIB)
    rec1 = ctx.sim.run(until=client.put("a.bin"))
    t0 = ctx.sim.now
    rec2 = ctx.sim.run(until=client.put("a.bin"))
    # skipped: same record back, only a manifest-check RTT elapsed
    assert rec2 is rec1
    assert ctx.sim.now - t0 < 1e-3


def test_put_tree_transfers_all_files():
    ctx, client, server, src_fs, dst_fs = env(seed=3)
    payloads = {}
    for i in range(4):
        payloads[f"f{i}.dat"] = make_file(ctx, src_fs, f"f{i}.dat",
                                          (i + 1) * MIB, seed=i)
    records = ctx.sim.run(until=client.put_tree())
    assert len(records) == 4
    assert sorted(r.path for r in records) == sorted(payloads)
    for name, payload in payloads.items():
        out = np.zeros(len(payload), dtype=np.uint8)
        ctx.sim.run(until=dst_fs.open(name, O_RDONLY).read(len(payload),
                                                           data=out))
        assert np.array_equal(out, payload)


def test_put_tree_resume_skips_done_files():
    ctx, client, server, src_fs, dst_fs = env(seed=4)
    for i in range(3):
        make_file(ctx, src_fs, f"f{i}.dat", MIB, seed=i)
    # first pass completes f0 only
    ctx.sim.run(until=client.put("f0.dat"))
    n_before = len(server.manifest)
    records = ctx.sim.run(until=client.put_tree())
    assert len(records) == 3
    assert len(server.manifest) == 3
    assert n_before == 1
    # f0's record is the original (not re-transferred)
    assert records[0].completed_at < records[1].completed_at


def test_get_pulls_file_back():
    ctx, client, server, src_fs, dst_fs = env(seed=5)
    payload = make_file(ctx, src_fs, "a.bin", 2 * MIB)
    ctx.sim.run(until=client.put("a.bin"))
    digest = ctx.sim.run(until=client.get("a.bin", dst_path="a.copy"))
    assert digest == StreamingDigest().update(payload).hexdigest()
    out = np.zeros(2 * MIB, dtype=np.uint8)
    ctx.sim.run(until=src_fs.open("a.copy", O_RDONLY).read(2 * MIB, data=out))
    assert np.array_equal(out, payload)


def test_stopped_server_refuses_sessions():
    ctx, client, server, src_fs, dst_fs = env(seed=6)
    make_file(ctx, src_fs, "a.bin", MIB)
    server.stop()
    with pytest.raises(ConnectionRefusedError):
        client.put("a.bin")


def test_client_requires_cabled_nics():
    ctx = Context.create(seed=7)
    a = Machine(ctx, "a", pcie_sockets=(0, 1))
    na0 = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    na1 = Nic(a, a.pcie_slots[1], NicKind.ROCE_QDR)
    fs = XfsFileSystem(ctx, RamDisk(
        ctx, "d", place_region(MIB, NumaPolicy.bind(0), 2)))
    server = RftpServer(ctx, na1, fs)
    with pytest.raises(ValueError):
        RftpClient(ctx, na0, fs, server)  # not cabled together


def test_put_missing_file_raises():
    ctx, client, server, src_fs, dst_fs = env(seed=8)
    with pytest.raises(FileNotFoundError):
        client.put("missing.bin")


def test_completed_ordering():
    ctx, client, server, src_fs, dst_fs = env(seed=9)
    for name in ("z.dat", "a.dat"):
        make_file(ctx, src_fs, name, MIB)
    ctx.sim.run(until=client.put("z.dat"))
    ctx.sim.run(until=client.put("a.dat"))
    completed = server.completed()
    assert [r.path for r in completed] == ["z.dat", "a.dat"]  # by time
