"""Tests for the application layer: STREAM, iperf, fio."""

import pytest

from repro.apps.fio import FioJob, run_fio
from repro.apps.iperf import run_iperf
from repro.apps.streambench import run_stream_model, run_stream_real
from repro.hw import Machine, backend_lan_host, frontend_lan_host
from repro.kernel import NumaPolicy, place_region
from repro.net.topology import wire_frontend_lan, wire_san
from repro.sim.context import Context
from repro.storage import IserInitiator, IserTarget, RamDisk
from repro.util.units import GB, KIB, MIB, to_gbps


# --- STREAM ---------------------------------------------------------------------


def test_stream_model_matches_paper_anchor():
    ctx = Context.create(seed=2)
    host = frontend_lan_host(ctx, "h")
    res = run_stream_model(host, duration=5.0)
    # paper §2.3: 50 GB/s across the two nodes
    assert res.triad_gb_per_s == pytest.approx(50.0, rel=0.05)
    assert res.threads == 16


def test_stream_numa_aware_beats_oblivious():
    ctx = Context.create(seed=2)
    a = frontend_lan_host(ctx, "a")
    aware = run_stream_model(a, duration=3.0, numa_aware=True)
    ctx2 = Context.create(seed=2)
    b = frontend_lan_host(ctx2, "b")
    oblivious = run_stream_model(b, duration=3.0, numa_aware=False)
    assert aware.triad_bytes_per_s > oblivious.triad_bytes_per_s


def test_stream_real_runs():
    res = run_stream_real(n=100_000, repeats=2)
    assert res.triad_bytes_per_s > 0


# --- iperf -----------------------------------------------------------------------


def iperf_pair(seed=1):
    ctx = Context.create(seed=seed)
    a = frontend_lan_host(ctx, "a")
    b = frontend_lan_host(ctx, "b")
    wire_frontend_lan(a, b)
    return ctx, a, b


def test_iperf_motivating_anchors():
    ctx, a, b = iperf_pair()
    default = run_iperf(ctx, a, b, duration=15.0, numa_tuned=False)
    ctx2, a2, b2 = iperf_pair(seed=2)
    tuned = run_iperf(ctx2, a2, b2, duration=15.0, numa_tuned=True)
    # paper §2.3: 83.5 -> 91.8 Gbps
    assert default.aggregate_gbps == pytest.approx(83.5, rel=0.07)
    assert tuned.aggregate_gbps == pytest.approx(91.8, rel=0.05)
    assert tuned.aggregate_gbps > default.aggregate_gbps


def test_iperf_copy_share_near_35_percent():
    ctx, a, b = iperf_pair()
    res = run_iperf(ctx, a, b, duration=10.0, numa_tuned=False)
    assert 0.25 < res.copy_share() < 0.5


def test_iperf_unidirectional_less_than_bidirectional():
    ctx, a, b = iperf_pair()
    uni = run_iperf(ctx, a, b, duration=10.0, bidirectional=False,
                    numa_tuned=True)
    ctx2, a2, b2 = iperf_pair(seed=3)
    bi = run_iperf(ctx2, a2, b2, duration=10.0, bidirectional=True,
                   numa_tuned=True)
    assert bi.aggregate_rate > uni.aggregate_rate
    assert uni.per_direction_bytes.keys() == {"c-a->b"} or len(
        uni.per_direction_bytes) == 1


def test_iperf_cached_buffer_faster():
    ctx, a, b = iperf_pair()
    cached = run_iperf(ctx, a, b, duration=10.0, numa_tuned=True,
                       cached_buffer=True)
    ctx2, a2, b2 = iperf_pair(seed=4)
    uncached = run_iperf(ctx2, a2, b2, duration=10.0, numa_tuned=True)
    assert cached.aggregate_rate > uncached.aggregate_rate * 1.05


def test_iperf_validation():
    ctx, a, b = iperf_pair()
    with pytest.raises(ValueError):
        run_iperf(ctx, a, b, duration=0.0)


# --- fio --------------------------------------------------------------------------


def test_fio_job_validation():
    with pytest.raises(ValueError):
        FioJob(rw="randrw", block_size=4096)
    with pytest.raises(ValueError):
        FioJob(rw="read", block_size=0)


def san_for_fio(seed=5, tuning="numa"):
    ctx = Context.create(seed=seed)
    front = frontend_lan_host(ctx, "front", with_ib=True)
    back = backend_lan_host(ctx, "back")
    wire_san(ctx, front, back)
    target = IserTarget(ctx, back, tuning=tuning, n_links=2)
    for _ in range(6):
        target.create_lun(GB)
    initiator = IserInitiator(ctx, front, target)
    ctx.sim.run(until=initiator.login_all())
    return ctx, front, target, initiator


def test_fio_read_matches_calibrated_anchor():
    ctx, front, target, initiator = san_for_fio()
    devices = [initiator.devices[i] for i in sorted(initiator.devices)]
    res = run_fio(ctx, front, devices,
                  FioJob(rw="read", block_size=4 * MIB, runtime=10.0))
    assert to_gbps(res.bandwidth) == pytest.approx(99.2, rel=0.05)
    assert res.n_flows == 24  # 6 LUNs x 4 jobs
    assert res.iops > 0
    assert len(res.per_device_bytes) == 6


def test_fio_on_local_ramdisk():
    ctx = Context.create(seed=6)
    m = Machine(ctx, "m", pcie_sockets=(0,))
    disk = RamDisk(ctx, "rd", place_region(GB, NumaPolicy.bind(0), m.n_nodes))
    res = run_fio(ctx, m, [disk],
                  FioJob(rw="write", block_size=1 * MIB, numjobs=2,
                         runtime=5.0, bind_node=0))
    assert res.bandwidth > 1e9  # memory-speed
    assert res.cpu_percent() > 0


def test_fio_small_blocks_cost_more_cpu_per_byte():
    ctx, front, target, initiator = san_for_fio(seed=7)
    devices = [initiator.devices[i] for i in sorted(initiator.devices)]
    small = run_fio(ctx, front, devices,
                    FioJob(rw="read", block_size=64 * KIB, runtime=5.0))
    ctx2, front2, target2, initiator2 = san_for_fio(seed=8)
    devices2 = [initiator2.devices[i] for i in sorted(initiator2.devices)]
    large = run_fio(ctx2, front2, devices2,
                    FioJob(rw="read", block_size=16 * MIB, runtime=5.0))
    cpu_small = small.accounting.total_seconds / small.total_bytes
    cpu_large = large.accounting.total_seconds / large.total_bytes
    assert cpu_small > cpu_large
    assert large.bandwidth > small.bandwidth


def test_fio_needs_devices():
    ctx = Context.create()
    m = Machine(ctx, "m")
    with pytest.raises(ValueError):
        run_fio(ctx, m, [], FioJob(rw="read", block_size=4096))
