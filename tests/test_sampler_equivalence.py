"""Differential suite: the backfill sampler against the per-tick reference.

Every fluid-driven series (throughput, CPU accounting, resource
utilization) must agree between ``REPRO_SAMPLER=event`` and
``REPRO_SAMPLER=backfill`` to 1e-6 across application scenarios
(RFTP / GridFTP / iSER), because the backfill backend only replaces
*when* the piecewise-linear counters are read, never the dynamics.

Also covers the array-backed ``TimeSeries.record_many`` bulk append
(monotonic-time enforcement, summary helpers) and the result-cache
identity (cache entries must not replay across sampler backends).
"""

import numpy as np
import pytest

from repro.core.system import EndToEndSystem
from repro.core.tuning import TuningPolicy
from repro.exec.task import SimTask
from repro.kernel.monitor import HostMonitor
from repro.sim import (
    FluidFlow,
    FluidResource,
    FluidScheduler,
    Simulator,
    ThroughputProbe,
    TimeSeries,
    default_sampler,
    hub_for,
)
from repro.sim.context import Context
from repro.util.units import GB, MIB

TOL = 1e-6


def assert_series_match(a: TimeSeries, b: TimeSeries) -> None:
    ta, va = a.as_arrays()
    tb, vb = b.as_arrays()
    assert len(a) == len(b), f"{a.name}: {len(a)} vs {len(b)} samples"
    np.testing.assert_allclose(ta, tb, rtol=0.0, atol=1e-9,
                               err_msg=f"times diverge in {a.name}")
    np.testing.assert_allclose(va, vb, rtol=TOL, atol=TOL,
                               err_msg=f"values diverge in {a.name}")


def assert_accounting_match(a, b) -> None:
    da, db = a.seconds_by_category(), b.seconds_by_category()
    assert set(da) == set(db)
    for k in da:
        assert da[k] == pytest.approx(db[k], rel=TOL, abs=TOL), k


def per_sampler(monkeypatch, fn):
    """Run *fn()* under each backend; returns (event_result, backfill_result)."""
    out = {}
    for backend in ("event", "backfill"):
        monkeypatch.setenv("REPRO_SAMPLER", backend)
        out[backend] = fn()
    return out["event"], out["backfill"]


# --- direct probe scenarios ----------------------------------------------------


def _throttled_flow_run():
    sim = Simulator()
    sched = FluidScheduler(sim)
    link = FluidResource(sched, 100.0, "link")
    flow = FluidFlow([(link, 1.0)], size=None, name="f")
    probe = ThroughputProbe(sim, lambda: flow.transferred, interval=1.0,
                            name="tp", pre_sample=sched.settle)
    sched.start(flow)

    def driver():
        yield sim.timeout(4.5)
        link.set_capacity(50.0)  # mid-interval rate epoch
        yield sim.timeout(3.25)
        link.set_capacity(200.0)
        yield sim.timeout(4.25)

    done = sim.process(driver())
    sim.run(until=done)
    sim.run(until=12.0)
    sched.settle()
    series = probe.stop()
    sched.stop(flow)
    return series, flow.transferred, sim.stats


def test_probe_agrees_across_rate_epochs(monkeypatch):
    (s_ev, total_ev, st_ev), (s_bf, total_bf, st_bf) = per_sampler(
        monkeypatch, _throttled_flow_run)
    assert_series_match(s_ev, s_bf)
    assert total_ev == pytest.approx(total_bf, rel=TOL)
    # the backfill leg materialized its samples without heap events
    assert st_bf.samples_backfilled == len(s_bf) == 12
    assert st_ev.samples_backfilled == 0
    assert st_bf.events_processed < st_ev.events_processed


def test_probe_samples_between_epochs_are_linear(monkeypatch):
    """Within one epoch the backfilled rates equal the constant fluid rate."""
    monkeypatch.setenv("REPRO_SAMPLER", "backfill")
    series, total, _ = _throttled_flow_run()
    # epochs at 4.5 / 7.75 / 12.0; rates 100 / 50 / 200
    values = dict(zip(series.times, series.values))
    assert values[1.0] == pytest.approx(100.0, rel=TOL)
    assert values[4.0] == pytest.approx(100.0, rel=TOL)
    assert values[5.0] == pytest.approx(0.5 * 100.0 + 0.5 * 50.0, rel=TOL)
    assert values[6.0] == pytest.approx(50.0, rel=TOL)
    assert values[8.0] == pytest.approx(0.75 * 50.0 + 0.25 * 200.0, rel=TOL)
    assert values[12.0] == pytest.approx(200.0, rel=TOL)
    assert total == pytest.approx(100 * 4.5 + 50 * 3.25 + 200 * 4.25, rel=TOL)


# --- application scenarios -----------------------------------------------------


def test_rftp_wan_cell_agrees(monkeypatch):
    from repro.core.experiments.exp_fig13_wan_bw import sweep

    def run():
        grid = sweep(quick=True, seed=3, block_sizes=(4 * MIB,),
                     stream_counts=(2,))
        return grid[(4 * MIB, 2)]

    ev, bf = per_sampler(monkeypatch, run)
    assert ev.total_bytes == pytest.approx(bf.total_bytes, rel=TOL)
    assert_series_match(ev.series, bf.series)
    assert_accounting_match(ev.sender_accounting, bf.sender_accounting)
    assert_accounting_match(ev.receiver_accounting, bf.receiver_accounting)
    assert ev.per_link_bytes.keys() == bf.per_link_bytes.keys()
    for k in ev.per_link_bytes:
        assert ev.per_link_bytes[k] == pytest.approx(
            bf.per_link_bytes[k], rel=TOL)


def test_gridftp_run_agrees(monkeypatch):
    def run():
        system = EndToEndSystem.lan_testbed(
            TuningPolicy.numa_bound(), seed=7, lun_size=2 * GB)
        return system.run_gridftp_transfer(duration=10.0)

    ev, bf = per_sampler(monkeypatch, run)
    assert ev.total_bytes == pytest.approx(bf.total_bytes, rel=TOL)
    assert_series_match(ev.series, bf.series)
    assert ev.sender_cpu.by_category.keys() == bf.sender_cpu.by_category.keys()
    for k, v in ev.sender_cpu.by_category.items():
        assert v == pytest.approx(bf.sender_cpu.by_category[k], rel=TOL, abs=TOL)


def test_iser_fio_with_host_monitor_agrees(monkeypatch):
    from repro.apps.fio import FioJob, run_fio
    from repro.core.experiments.exp_fig07_iser_bw import _build

    def run():
        ctx, front, target, initiator = _build("numa", 11, None)
        monitor = HostMonitor(front, interval=1.0)
        devices = [initiator.devices[i] for i in sorted(initiator.devices)]
        res = run_fio(ctx, front, devices,
                      FioJob(rw="read", block_size=1 * MIB, runtime=10.0))
        ctx.fluid.settle()
        monitor.stop()
        return res, monitor

    (res_ev, mon_ev), (res_bf, mon_bf) = per_sampler(monkeypatch, run)
    assert res_ev.total_bytes == pytest.approx(res_bf.total_bytes, rel=TOL)
    assert_accounting_match(res_ev.accounting, res_bf.accounting)
    for n in mon_ev.cpu:
        assert_series_match(mon_ev.cpu[n], mon_bf.cpu[n])
    for n in mon_ev.mem:
        assert_series_match(mon_ev.mem[n], mon_bf.mem[n])
    if len(mon_ev.qpi):
        assert_series_match(mon_ev.qpi, mon_bf.qpi)
    assert mon_ev.hottest_resource() == mon_bf.hottest_resource()


# --- TimeSeries.record_many ----------------------------------------------------


def test_record_many_matches_looped_record():
    a, b = TimeSeries("a"), TimeSeries("b")
    ts = [0.5, 1.0, 2.5, 2.5, 4.0]
    vs = [1.0, -2.0, 3.5, 0.0, 7.25]
    for t, v in zip(ts, vs):
        a.record(t, v)
    b.record_many(ts, vs)
    assert b.times == a.times and b.values == a.values
    assert b.mean() == a.mean()
    assert b.steady_mean() == a.steady_mean()
    assert b.max() == a.max() and b.min() == a.min()
    tb, vb = b.as_arrays()
    np.testing.assert_array_equal(tb, np.asarray(ts))
    np.testing.assert_array_equal(vb, np.asarray(vs))


def test_record_many_appends_after_existing_samples():
    s = TimeSeries("s")
    s.record(1.0, 10.0)
    s.record_many([1.0, 2.0], [20.0, 30.0])
    assert s.times == [1.0, 1.0, 2.0]
    assert s.values == [10.0, 20.0, 30.0]


def test_record_many_enforces_monotonic_time():
    s = TimeSeries("s")
    with pytest.raises(ValueError, match="backwards"):
        s.record_many([1.0, 0.5], [0.0, 0.0])
    s.record(2.0, 0.0)
    with pytest.raises(ValueError, match="backwards"):
        s.record_many([1.5, 3.0], [0.0, 0.0])
    # failed batches must not have mutated the series
    assert s.times == [2.0] and s.values == [0.0]


def test_record_many_validates_shape_and_allows_empty():
    s = TimeSeries("s")
    s.record_many([], [])
    assert len(s) == 0
    with pytest.raises(ValueError, match="equal-length"):
        s.record_many([1.0, 2.0], [0.0])
    with pytest.raises(ValueError, match="equal-length"):
        s.record_many([[1.0, 2.0]], [[0.0, 0.0]])


# --- sampler plumbing ----------------------------------------------------------


def test_default_sampler_env(monkeypatch):
    monkeypatch.delenv("REPRO_SAMPLER", raising=False)
    assert default_sampler() == "backfill"
    monkeypatch.setenv("REPRO_SAMPLER", "event")
    assert default_sampler() == "event"
    monkeypatch.setenv("REPRO_SAMPLER", "bogus")
    with pytest.raises(ValueError, match="REPRO_SAMPLER"):
        default_sampler()


def test_channel_validation():
    sim = Simulator()
    hub = hub_for(sim)
    assert hub is hub_for(sim)  # one hub per simulator
    series = TimeSeries("x")
    with pytest.raises(ValueError, match="interval"):
        hub.channel(lambda: 0.0, 0.0, series)
    with pytest.raises(ValueError, match="kind"):
        hub.channel(lambda: 0.0, 1.0, series, kind="histogram")
    with pytest.raises(ValueError, match="mode"):
        hub.channel(lambda: 0.0, 1.0, series, mode="lazy")


def test_probe_stop_is_idempotent(monkeypatch):
    for backend in ("event", "backfill"):
        monkeypatch.setenv("REPRO_SAMPLER", backend)
        sim = Simulator()
        probe = ThroughputProbe(sim, lambda: 0.0, interval=1.0)
        assert probe.sampler == backend
        sim.run(until=3.0)
        first = probe.stop()
        again = probe.stop()
        assert first is again
        assert len(first) == 3


def test_sampler_backend_is_part_of_cache_identity(monkeypatch):
    task = SimTask(target="repro.core.experiments.exp_fig13_wan_bw:run",
                   params={"quick": True}, seed=0)
    monkeypatch.setenv("REPRO_SAMPLER", "backfill")
    id_bf, key_bf = task.identity(), task.cache_key("fp")
    monkeypatch.setenv("REPRO_SAMPLER", "event")
    id_ev, key_ev = task.identity(), task.cache_key("fp")
    assert '"sampler":"backfill"' in id_bf
    assert '"sampler":"event"' in id_ev
    assert key_bf != key_ev
