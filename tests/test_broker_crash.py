"""Broker crash tolerance: journaled vs amnesiac restart, paced
recovery, heartbeat rail health, retry budgets, brownout admission,
and the fault-edge cases (cancel mid-reschedule, correlated rail
deaths, crash with banked requeued work)."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.service import BrokerConfig, RailFleet, TransferBroker
from repro.sim.context import Context
from repro.util.units import GIB, MIB


def _broker(seed=0, faults="", **cfg):
    ctx = Context.create(seed=seed)
    if faults:
        FaultInjector(ctx, FaultPlan.parse(faults))
    fleet = RailFleet(ctx, n_hosts=1)
    return ctx, fleet, TransferBroker(ctx, fleet, BrokerConfig(**cfg))


# --- journal lifecycle ------------------------------------------------------------


def test_journal_only_exists_under_an_armed_injector():
    _ctx, _fleet, plain = _broker()
    assert plain.journal is None  # fault-free runs pay zero journal cost
    _ctx2, _fleet2, armed = _broker(faults="crash@transfer:*,at=1,duration=0.5")
    assert armed.journal is not None
    _ctx3, _fleet3, off = _broker(
        faults="crash@transfer:*,at=1,duration=0.5", journal=False)
    assert off.journal is None


def test_crash_drops_submissions():
    ctx, fleet, broker = _broker(faults="crash@transfer:*,at=1,duration=1")
    ctx.sim.run(until=1.5)
    assert broker.submit("t0", 64 * MIB) is None
    assert broker.stats.dropped == 1
    assert broker.cancel(0) is False  # nobody is listening
    ctx.sim.run(until=3.0)
    assert broker.submit("t0", 64 * MIB) is not None  # back after restart


def _crash_fixture(journal):
    """2 running + 4 queued jobs, broker crash at 1 s, restart at 1.5 s."""
    ctx, fleet, broker = _broker(
        faults="crash@transfer:*,at=1,duration=0.5",
        budget_fraction=0.67, journal=journal)  # ~2 concurrent
    jids = [broker.submit(f"tenant{i}", 8 * GIB) for i in range(6)]
    assert broker.running == 2 and broker.queued == 4
    ctx.sim.run(until=30.0)
    return broker, jids


def test_journaled_restart_loses_nothing():
    broker, jids = _crash_fixture(journal=True)
    s = broker.stats
    assert s.crashes == 1
    assert s.lost == 0 and s.lost_bytes == 0.0
    assert s.replayed > 0  # the rebuilt backlog was replayed
    assert s.completed == 6
    for j in jids:
        row = broker.session(j)
        assert row["state"] == "completed"
        assert row["transferred"] == pytest.approx(8 * GIB)
    audit = broker.audit()
    assert audit["jobs_conserved"] and audit["completions_exact"]
    assert audit["bytes_exact"]
    assert audit["journaled"] and audit["journal_records"] > 0


def test_amnesiac_restart_loses_the_backlog_and_the_flows():
    broker, jids = _crash_fixture(journal=False)
    s = broker.stats
    assert s.crashes == 1
    assert s.completed == 0
    assert s.lost == 6  # 2 orphaned flows torn down + 4 vanished queued
    assert s.lost_bytes > 0.0  # the orphans had already moved bytes
    states = {broker.session(j)["state"] for j in jids}
    assert states == {"lost"}
    audit = broker.audit()
    assert audit["jobs_conserved"]  # lost is a terminal state, conserved
    assert not audit["journaled"]


def test_pending_completion_reconciled_exactly_once():
    """A flow finishing during the outage is late-completed at restart
    (journaled) with its bytes accounted exactly once."""
    ctx, fleet, broker = _broker(faults="crash@transfer:*,at=1,duration=3")
    jid = broker.submit("t0", 8 * GIB)  # finishes ~1.6 s: mid-outage
    ctx.sim.run(until=10.0)
    s = broker.stats
    row = broker.session(jid)
    assert row["state"] == "completed"
    assert s.completed == 1 and s.replayed == 1
    assert s.bytes_completed == pytest.approx(8 * GIB)
    # The latency honestly includes the outage: observed only at restart.
    assert row["finished_at"] == pytest.approx(4.0)
    assert broker.audit()["bytes_exact"]


def test_recovery_pacer_spaces_backlog_restarts():
    """Post-restart the backlog drains at recovery_rate, not as a herd."""
    ctx, fleet, broker = _broker(
        faults="crash@transfer:*,at=1,duration=3",
        budget_fraction=0.67, recovery_rate=2.0)
    for i in range(2):
        broker.submit(f"tenant{i}", 8 * GIB)  # complete mid-outage
    queued = [broker.submit(f"tenant{i + 2}", 1 * GIB) for i in range(4)]
    assert broker.queued == 4
    ctx.sim.run(until=30.0)
    starts = sorted(broker.session(j)["started_at"] for j in queued)
    assert starts[0] == pytest.approx(4.0)  # restart instant
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    assert all(g == pytest.approx(0.5) for g in gaps)  # 1/recovery_rate
    assert broker.stats.completed == 6 and broker.stats.lost == 0


def test_unpaced_restart_dispatches_the_whole_backlog_at_once():
    ctx, fleet, broker = _broker(
        faults="crash@transfer:*,at=1,duration=3", recovery_rate=0.0)
    # Default budget (1.5 x 3 rails) runs 4 concurrently; 2 queue.  All
    # four runners complete mid-outage, so the whole backlog is
    # admissible the instant the broker restarts.
    jids = [broker.submit(f"tenant{i}", 8 * GIB) for i in range(6)]
    queued = [j for j in jids if broker.session(j)["state"] == "queued"]
    assert len(queued) == 2
    ctx.sim.run(until=30.0)
    starts = [broker.session(j)["started_at"] for j in queued]
    assert all(t == pytest.approx(4.0) for t in starts)  # the CM-storm herd


# --- fault-edge cases (the satellite checklist) -----------------------------------


def test_cancel_during_rail_death_backoff_window():
    """Cancelling a victim waiting out its retry backoff must stick:
    the later requeue callback may not resurrect it."""
    ctx, fleet, broker = _broker(
        faults="link-down@link:0,at=1.0",
        retry_backoff_base=0.5, retry_backoff_cap=2.0)
    jids = [broker.submit("t", 8 * GIB) for _ in range(3)]
    ctx.sim.run(until=1.05)
    victim = next(j for j in jids
                  if broker.session(j)["state"] == "queued")
    assert broker.session(victim)["reschedules"] == 1
    assert broker.cancel(victim) is True
    assert broker.session(victim)["state"] == "cancelled"
    ctx.sim.run(until=30.0)  # the backoff timer fires into the guard
    assert broker.session(victim)["state"] == "cancelled"
    assert broker.stats.completed == 2 and broker.stats.cancelled == 1
    assert broker.queued == 0
    audit = broker.audit()
    assert audit["jobs_conserved"] and audit["bytes_exact"]


def test_two_rails_dying_in_the_same_settle_epoch():
    ctx, fleet, broker = _broker(
        faults="link-down@link:svc0-rail0,at=1.0;"
               "link-down@link:svc0-rail2,at=1.0")  # rails[0] and rails[1]
    jids = [broker.submit("t", 8 * GIB) for _ in range(3)]
    ctx.sim.run(until=1.1)
    assert [r.alive for r in fleet.rails] == [False, False, True]
    ctx.sim.run(until=60.0)
    # Both deaths land at the same instant but process sequentially:
    # rail 0's victim hops onto rail 1 just before rail 1's own death
    # event fires, so it is rescheduled twice (3 total, not 2).
    assert broker.stats.rescheduled == 3
    for j in jids:
        row = broker.session(j)
        assert row["state"] == "completed"
        assert row["transferred"] == pytest.approx(8 * GIB)
    audit = broker.audit()
    assert audit["jobs_conserved"] and audit["bytes_exact"]


def test_crash_with_requeued_banked_jobs_in_the_queue():
    """Rail death banks partial bytes and requeues; a crash right after
    must preserve the banked bytes through the journal rebuild."""
    ctx, fleet, broker = _broker(
        faults="link-down@link:0,at=1.0;crash@transfer:*,at=1.1,duration=1.0",
        budget_fraction=0.35,  # 1 concurrent: the victim stays queued
        retry_backoff_base=2.0, retry_backoff_cap=2.0)
    jid = broker.submit("t0", 8 * GIB)
    ctx.sim.run(until=1.05)
    row = broker.session(jid)
    assert row["state"] == "queued" and row["transferred"] > 0  # banked
    banked_at_requeue = row["transferred"]
    ctx.sim.run(until=30.0)
    row = broker.session(jid)
    assert row["state"] == "completed"
    assert row["transferred"] == pytest.approx(8 * GIB)
    s = broker.stats
    assert s.crashes == 1 and s.lost == 0
    assert s.bytes_completed == pytest.approx(8 * GIB)  # exactly once
    assert banked_at_requeue > 0
    audit = broker.audit()
    assert audit["jobs_conserved"] and audit["bytes_exact"]


# --- degraded-mode knobs ----------------------------------------------------------


def test_heartbeat_declares_death_after_suspicion_threshold():
    ctx, fleet, broker = _broker(
        faults="link-down@link:0,at=1.05,duration=10",
        heartbeat_s=0.2, suspicion=3)
    jids = [broker.submit("t", 8 * GIB) for _ in range(3)]
    ctx.sim.run(until=1.3)  # one missed beat: suspected, not declared
    assert fleet.rails[0].alive and fleet.rails[0].suspect == 1
    assert broker.stats.rescheduled == 0
    ctx.sim.run(until=1.7)  # third miss at 1.6: declared dead
    assert not fleet.rails[0].alive
    assert broker.stats.rescheduled == 1
    ctx.sim.run(until=60.0)
    assert all(broker.session(j)["state"] == "completed" for j in jids)


def test_heartbeat_tolerates_blips_shorter_than_the_threshold():
    ctx, fleet, broker = _broker(
        faults="link-down@link:0,at=1.05,duration=0.3",
        heartbeat_s=0.2, suspicion=3)
    jids = [broker.submit("t", 8 * GIB) for _ in range(3)]
    ctx.sim.run(until=60.0)
    assert fleet.rails[0].alive
    assert broker.stats.rescheduled == 0  # the blip never became a death
    assert all(broker.session(j)["state"] == "completed" for j in jids)


def test_retry_budget_fails_a_bouncing_job():
    ctx, fleet, broker = _broker(
        # The retry lands on the lowest-index alive rail (rails[1], the
        # link named svc0-rail2: rails sort by NUMA node) — kill that too.
        faults="link-down@link:svc0-rail0,at=1.0;"
               "link-down@link:svc0-rail2,at=2.5",
        retry_budget=1)
    jid = broker.submit("t0", 32 * GIB)
    ctx.sim.run(until=2.0)
    assert broker.session(jid)["reschedules"] == 1  # first retry allowed
    ctx.sim.run(until=10.0)
    row = broker.session(jid)
    assert row["state"] == "failed"  # second reschedule exceeded the budget
    assert broker.stats.failed == 1
    assert broker.audit()["jobs_conserved"]


def test_brownout_sheds_low_tiers_when_capacity_drops():
    ctx, fleet, broker = _broker(
        faults="link-down@link:0,at=1.0;link-down@link:1,at=1.0",
        priority_tiers=2, brownout=True)
    # Full capacity: both tiers admitted.
    assert broker.submit("tenant0", 64 * MIB) is not None
    assert broker.submit("tenant1", 64 * MIB) is not None
    ctx.sim.run(until=1.5)  # 1 of 3 rails alive: only tier 0 admitted
    assert broker.submit("tenant2", 64 * MIB) is not None  # tier 0
    assert broker.submit("tenant3", 64 * MIB) is None  # tier 1: shed
    assert broker.stats.browned_out == 1
    assert broker.stats.shed == 1
    ctx.sim.run(until=30.0)
    assert broker.audit()["jobs_conserved"]
