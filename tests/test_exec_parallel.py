"""Determinism of the parallel executor and the cached report pipeline.

The contract under test: ``jobs`` and cache state change *where* a
simulation runs and *whether* it re-runs — never its result.  Serial,
process-pool and cache-served executions of the same task list must be
indistinguishable, down to the bytes of EXPERIMENTS.md.
"""

from __future__ import annotations

import json

from repro.__main__ import main
from repro.core.reportgen import generate_experiments_md
from repro.core.sensitivity import run_sensitivity
from repro.exec import ExecContext, ResultCache, SimTask, executor, run_tasks

#: experiments with multi-leg plans plus a single-task module — enough to
#: exercise fan-out, dedup and fallback without running the whole ledger.
SUBSET = ("table1", "fig09", "fig10", "fig11")


def echo_task(*, seed, cal, tag):
    """Order-probe target: returns its own tag and seed."""
    return (tag, seed)


def test_run_tasks_preserves_task_order_under_fanout():
    tasks = [SimTask("tests.test_exec_parallel:echo_task", {"tag": i}, seed=i)
             for i in range(12)]
    serial = run_tasks(tasks, ExecContext(jobs=1))
    fanned = run_tasks(tasks, ExecContext(jobs=3))
    assert serial == [(i, i) for i in range(12)]
    assert fanned == serial


def test_generate_experiments_md_parallel_is_byte_identical():
    serial = generate_experiments_md(quick=True)
    parallel = generate_experiments_md(quick=True, jobs=2)
    assert parallel == serial


def test_report_cache_hits_reproduce_fresh_run(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    fresh = generate_experiments_md(quick=True, only=SUBSET, cache=cache)
    assert fresh == generate_experiments_md(quick=True, only=SUBSET)
    # fig09+fig10 share their GridFTP leg and fig10+fig11 their RFTP leg,
    # so fewer unique simulations run than tasks were planned.
    assert cache.stats.misses > cache.stats.stores > 0

    stats: dict = {}
    warm = generate_experiments_md(quick=True, only=SUBSET, cache=cache,
                                   stats=stats)
    assert warm == fresh
    assert stats["executed"] == 0
    assert stats["cache"]["hits"] == stats["tasks"]
    assert cache.stats.misses == stats["tasks"]  # unchanged by the warm run


def test_sensitivity_grid_parallel_matches_serial():
    constants = ("qpi_bandwidth",)
    serial = run_sensitivity(constants=constants)
    with executor(jobs=2):
        fanned = run_sensitivity(constants=constants)
    assert fanned.outcomes == serial.outcomes
    assert set(fanned.outcomes) == {("qpi_bandwidth", "-20%"),
                                    ("qpi_bandwidth", "+20%")}


def test_cli_report_jobs_and_cache_flags(tmp_path, capsys):
    out1, out2 = tmp_path / "EXP1.md", tmp_path / "EXP2.md"
    cache_dir = tmp_path / "cache"
    stats1, stats2 = tmp_path / "s1.json", tmp_path / "s2.json"

    assert main(["report", "-o", str(out1), "--jobs", "2",
                 "--cache-dir", str(cache_dir),
                 "--stats-json", str(stats1)]) == 0
    footer = capsys.readouterr().out
    assert "jobs=2" in footer and "misses" in footer and "wall=" in footer

    assert main(["report", "-o", str(out2), "--jobs", "2",
                 "--cache-dir", str(cache_dir),
                 "--stats-json", str(stats2)]) == 0
    capsys.readouterr()

    assert out1.read_text() == out2.read_text()
    cold = json.loads(stats1.read_text())
    warm = json.loads(stats2.read_text())
    assert cold["cache"]["misses"] == cold["tasks"] > 0
    assert warm["cache"]["misses"] == 0
    assert warm["cache"]["hits"] == warm["tasks"] == cold["tasks"]
    assert warm["executed"] == 0


def test_cli_report_no_cache(tmp_path, capsys):
    out = tmp_path / "EXP.md"
    assert main(["report", "-o", str(out), "--no-cache",
                 "--cache-dir", str(tmp_path / "never-created")]) == 0
    assert "cache: disabled" in capsys.readouterr().out
    assert not (tmp_path / "never-created").exists()
    assert "Scorecard" in out.read_text()
