"""Seed-stability of the sharded runtime: results never depend on how
many workers or shards execute the cells.

The cell — not the shard — is the unit of simulation: cell *i* always
runs in its own context seeded ``cell_seed(seed, i)`` and the
coordinator's arithmetic is over deterministically ordered arrays, so
ledgers are byte-identical (canonical JSON) across ``--jobs`` counts
and shard counts.  ``exchange["n_shards"]`` legitimately varies and is
masked before comparison.
"""

import json

from repro.exec.runner import executor
from repro.service.fabric import FabricSpec, run_fabric
from repro.sim.shard import BoundaryLink, run_sharded

DEMO = dict(
    target="repro.sim.shard:demo_cell",
    n_cells=5,
    boundaries=[BoundaryLink("wan0", 200e6)],
    horizon=5.0, epoch_dt=1.0,
    params={"n_local": 2, "cross_rate": 80e6, "cross_skew": 0.3},
    seed=23,
)

FABRIC = FabricSpec(
    n_pods=3, hosts_per_pod=2, n_wan_links=1, wan_gbps=20.0,
    elephants_per_pod=1, elephant_gbps=4.0, rate_per_host=3.0,
    size_mean_mib=64.0, wan_tenants=2, serve_s=3.0, horizon_s=4.0)


def _canon(result: dict) -> str:
    masked = dict(result, exchange=dict(result["exchange"], n_shards=None))
    return json.dumps(masked, sort_keys=True)


def test_demo_ledgers_identical_across_shard_counts():
    reference = _canon(run_sharded(**DEMO, n_shards=1))
    for n_shards in (2, 3, 4, 5):
        assert _canon(run_sharded(**DEMO, n_shards=n_shards)) == reference, (
            f"n_shards={n_shards} diverged")


def test_demo_ledgers_identical_across_worker_counts():
    with executor(jobs=1):
        serial = _canon(run_sharded(**DEMO))
    with executor(jobs=8):
        parallel = _canon(run_sharded(**DEMO))
    assert parallel == serial


def test_fabric_ledgers_identical_across_workers_and_shards():
    outputs = set()
    for jobs, n_shards in ((1, 1), (1, 3), (2, 0), (4, 2)):
        with executor(jobs=jobs):
            result = run_fabric(FABRIC, seed=7, n_shards=n_shards,
                                fixed_rounds=2)
        outputs.add(_canon(result))
    assert len(outputs) == 1


def test_fabric_reruns_are_byte_identical_at_equal_seed():
    a = run_fabric(FABRIC, seed=7, fixed_rounds=2)
    b = run_fabric(FABRIC, seed=7, fixed_rounds=2)
    assert _canon(a) == _canon(b)


def test_different_seeds_give_different_job_streams():
    a = run_fabric(FABRIC, seed=7, fixed_rounds=2)
    b = run_fabric(FABRIC, seed=8, fixed_rounds=2)
    assert _canon(a) != _canon(b)
