"""Tests for the hardware model: topology, NICs, presets, MESI coherence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    Machine,
    MesiCache,
    MesiState,
    Nic,
    NicKind,
    backend_lan_host,
    coherence_costs,
    frontend_lan_host,
    wan_host,
)
from repro.sim.context import Context
from repro.util.units import gbps


def ctx():
    return Context.create(seed=1)


# --- Machine topology ------------------------------------------------------------


def test_machine_core_and_memory_counts():
    m = Machine(ctx(), "m", n_sockets=2, cores_per_socket=8,
                mem_bytes_per_node=64 << 30)
    assert m.n_nodes == 2
    assert m.n_cores == 16
    assert m.total_memory_bytes == 128 << 30


def test_socket_of_core():
    m = Machine(ctx(), "m", n_sockets=2, cores_per_socket=8)
    assert m.socket_of_core(0) == 0
    assert m.socket_of_core(7) == 0
    assert m.socket_of_core(8) == 1
    with pytest.raises(IndexError):
        m.socket_of_core(16)


def test_numa_distance_matrix():
    m = Machine(ctx(), "m", n_sockets=2, cores_per_socket=8)
    assert m.numa_distance(0, 0) == 10
    assert m.numa_distance(0, 1) == 21
    assert m.numa_distance(1, 0) == 21


def test_local_mem_path_single_bank():
    m = Machine(ctx(), "m")
    path = m.mem_path(0, 0, traffic=1.0)
    assert len(path) == 1
    assert path[0][0] is m.mem_bank(0).bandwidth
    assert path[0][1] == 1.0


def test_remote_mem_path_crosses_qpi_with_derate():
    c = ctx()
    m = Machine(c, "m")
    path = m.mem_path(0, 1, traffic=1.0)
    resources = [r for r, _ in path]
    assert m.qpi(0, 1) in resources
    assert m.mem_bank(1).bandwidth in resources
    qpi_weight = dict((r.name, w) for r, w in path)[m.qpi(0, 1).name]
    assert qpi_weight == pytest.approx(1.0 / c.cal.remote_access_derate)


def test_remote_path_effective_rate_below_local():
    """Remote access is limited by QPI, not the bank."""
    c = ctx()
    m = Machine(c, "m")
    local = m.mem_path(0, 0)
    remote = m.mem_path(0, 1)
    local_rate = min(r.capacity / w for r, w in local)
    remote_rate = min(r.capacity / w for r, w in remote)
    assert remote_rate < local_rate


def test_qpi_requires_distinct_sockets():
    m = Machine(ctx(), "m")
    with pytest.raises(ValueError):
        m.qpi(0, 0)


def test_cpu_resource_capacity_is_core_count():
    m = Machine(ctx(), "m", cores_per_socket=8)
    assert m.cpu_resource(0).capacity == 8.0


def test_cpu_path_weight_is_seconds_per_byte():
    m = Machine(ctx(), "m")
    path = m.cpu_path(1, 2e-9)
    assert path == [(m.cpu_resource(1), 2e-9)]


def test_invalid_pcie_socket_rejected():
    with pytest.raises(IndexError):
        Machine(ctx(), "m", n_sockets=2, pcie_sockets=(5,))


# --- NICs ----------------------------------------------------------------------


def test_nic_occupies_slot():
    m = Machine(ctx(), "m", pcie_sockets=(0,))
    nic = Nic(m, m.pcie_slots[0], NicKind.ROCE_QDR)
    assert m.pcie_slots[0].device is nic
    with pytest.raises(ValueError):
        Nic(m, m.pcie_slots[0], NicKind.ROCE_QDR)


def test_nic_node_affinity():
    m = Machine(ctx(), "m", pcie_sockets=(1,))
    nic = Nic(m, m.pcie_slots[0], NicKind.IB_FDR)
    assert nic.node == 1


def test_nic_data_rate_below_line_rate():
    m = Machine(ctx(), "m", pcie_sockets=(0, 1))
    roce = Nic(m, m.pcie_slots[0], NicKind.ROCE_QDR, mtu=9000)
    ib = Nic(m, m.pcie_slots[1], NicKind.IB_FDR, mtu=65520)
    assert roce.line_rate == gbps(40.0)
    assert ib.line_rate == gbps(56.0)
    assert 0.9 * roce.line_rate < roce.data_rate() < roce.line_rate
    assert 0.9 * ib.line_rate < ib.data_rate() < ib.line_rate


def test_nic_mtu_1500_less_efficient():
    m = Machine(ctx(), "m", pcie_sockets=(0, 1))
    big = Nic(m, m.pcie_slots[0], NicKind.ROCE_QDR, mtu=9000)
    small = Nic(m, m.pcie_slots[1], NicKind.ROCE_QDR, mtu=1500)
    assert small.data_rate() < big.data_rate()


def test_dma_paths_local_vs_remote():
    m = Machine(ctx(), "m", pcie_sockets=(0,))
    nic = Nic(m, m.pcie_slots[0], NicKind.ROCE_QDR)
    local = nic.dma_read_path(buffer_node=0)
    remote = nic.dma_read_path(buffer_node=1)
    assert len(remote) > len(local)
    assert local[0][0] is m.pcie_slots[0].to_device
    assert remote[0][0] is m.pcie_slots[0].to_device


# --- Presets (Table 1) ------------------------------------------------------------


def test_frontend_preset_matches_table1():
    m = frontend_lan_host(ctx(), "client")
    assert m.n_cores == 16 and m.n_nodes == 2
    assert m.total_memory_bytes == 128 << 30
    nics = [s.device for s in m.pcie_slots]
    assert len(nics) == 3
    assert all(n.kind is NicKind.ROCE_QDR for n in nics)
    assert {n.node for n in nics} == {0, 1}


def test_backend_preset_matches_table1():
    m = backend_lan_host(ctx(), "target")
    assert m.n_cores == 16 and m.n_nodes == 2
    assert m.total_memory_bytes == 384 << 30
    nics = [s.device for s in m.pcie_slots]
    assert len(nics) == 2
    assert all(n.kind is NicKind.IB_FDR for n in nics)
    assert {n.node for n in nics} == {0, 1}  # one per socket (Fig. 2)


def test_wan_preset_matches_table1():
    m = wan_host(ctx(), "nersc")
    assert m.n_cores == 12 and m.n_nodes == 2
    assert m.total_memory_bytes == 64 << 30
    assert len(m.pcie_slots) == 1
    assert m.pcie_slots[0].device.kind is NicKind.ROCE_QDR


# --- MESI coherence ---------------------------------------------------------------


def test_mesi_first_read_is_exclusive():
    c = MesiCache(2)
    out = c.read(0, agent=0)
    assert out.state is MesiState.EXCLUSIVE
    assert not out.remote_fetch


def test_mesi_second_read_shares():
    c = MesiCache(2)
    c.read(0, 0)
    out = c.read(0, 1)
    assert out.state is MesiState.SHARED
    assert c.state(0, 0) is MesiState.SHARED
    assert out.remote_fetch


def test_mesi_write_invalidates_remote_copies():
    c = MesiCache(2)
    c.read(0, 0)
    c.read(0, 1)
    out = c.write(0, 0)
    assert out.state is MesiState.MODIFIED
    assert out.invalidations == 1
    assert c.state(0, 1) is MesiState.INVALID


def test_mesi_write_to_exclusive_is_silent():
    c = MesiCache(2)
    c.read(0, 0)
    out = c.write(0, 0)
    assert out.invalidations == 0
    assert c.state(0, 0) is MesiState.MODIFIED


def test_mesi_read_of_modified_forces_writeback():
    c = MesiCache(2)
    c.write(0, 0)
    out = c.read(0, 1)
    assert out.writeback
    assert c.state(0, 0) is MesiState.SHARED
    assert c.state(0, 1) is MesiState.SHARED


def test_mesi_repeated_write_free():
    c = MesiCache(2)
    c.write(0, 0)
    out = c.write(0, 0)
    assert out.invalidations == 0 and not out.remote_fetch


def test_mesi_evict_reports_dirty():
    c = MesiCache(2)
    c.write(0, 0)
    assert c.evict(0, 0) is True
    assert c.evict(0, 0) is False


def test_mesi_validation():
    with pytest.raises(ValueError):
        MesiCache(0)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["r", "w"]),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_mesi_invariant_single_writer_multiple_readers(ops):
    """SWMR: at most one M/E copy per line; M excludes all other copies."""
    cache = MesiCache(4)
    for op, agent, line in ops:
        if op == "r":
            cache.read(line, agent)
        else:
            cache.write(line, agent)
        states = [cache.state(line, a) for a in range(4)]
        exclusive = [s for s in states if s in (MesiState.MODIFIED, MesiState.EXCLUSIVE)]
        assert len(exclusive) <= 1
        if MesiState.MODIFIED in states or MesiState.EXCLUSIVE in states:
            valid = [s for s in states if s is not MesiState.INVALID]
            assert len(valid) == 1


# --- fluid coherence aggregate ------------------------------------------------------


def test_coherence_reads_are_free():
    from repro.core.calibration import CALIBRATION

    costs = coherence_costs(CALIBRATION, 0.5, is_write=False)
    assert costs.cpu_per_byte == 0.0
    assert costs.qpi_traffic_factor == 0.0


def test_coherence_writes_scale_with_remote_fraction():
    from repro.core.calibration import CALIBRATION

    low = coherence_costs(CALIBRATION, 0.0, is_write=True)
    high = coherence_costs(CALIBRATION, 0.5, is_write=True)
    assert high.cpu_per_byte > low.cpu_per_byte
    assert high.qpi_traffic_factor > low.qpi_traffic_factor == 0.0


def test_coherence_fraction_validated():
    from repro.core.calibration import CALIBRATION

    with pytest.raises(ValueError):
        coherence_costs(CALIBRATION, 1.5, is_write=True)
