"""TCP congestion-control specifics: cubic math, loss under saturation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import wan_host
from repro.kernel import NumaPolicy, SimProcess, place_region
from repro.net.tcp import TcpConnection, TcpEndpoint
from repro.net.topology import wire_wan
from repro.sim.context import Context


def wan_conns(n, seed=131, window=None):
    ctx = Context.create(seed=seed)
    if window is not None:
        ctx = Context.create(
            seed=seed, cal=ctx.cal.replace(tcp_max_window_bytes=window))
    nersc, anl = wan_host(ctx, "n"), wan_host(ctx, "a")
    link = wire_wan(nersc, anl)
    sproc = SimProcess(nersc, "s", cpu_policy=NumaPolicy.bind(0))
    rproc = SimProcess(anl, "r", cpu_policy=NumaPolicy.bind(0))
    conns = []
    for i in range(n):
        st_, rt = sproc.spawn_thread(), rproc.spawn_thread()
        conn = TcpConnection(
            ctx, f"t{i}",
            TcpEndpoint(st_, nersc.pcie_slots[0].device,
                        place_region(1 << 28, sproc.mem_policy, 2,
                                     touch_node=0)),
            TcpEndpoint(rt, anl.pcie_slots[0].device,
                        place_region(1 << 28, rproc.mem_policy, 2,
                                     touch_node=0)),
            tuned_irq=True,
        )
        conn.open()
        conns.append(conn)
    return ctx, link, conns


# --- cubic window function ---------------------------------------------------------


def test_cubic_window_at_epoch_start():
    """Immediately after a loss the window sits at beta * Wmax... the
    cubic function evaluated at t=0 gives Wmax - C*K^3*mss = beta*Wmax."""
    ctx, link, conns = wan_conns(1)
    conn = conns[0]
    conn._w_max = 100 * conn.mss
    cal = ctx.cal
    w0 = conn._cubic_window(0.0)
    assert w0 / conn._w_max == pytest.approx(cal.cubic_beta, rel=1e-6)


def test_cubic_window_recovers_wmax_at_k():
    ctx, link, conns = wan_conns(1, seed=132)
    conn = conns[0]
    conn._w_max = 500 * conn.mss
    cal = ctx.cal
    w_max_seg = conn._w_max / conn.mss
    k = (w_max_seg * (1 - cal.cubic_beta) / cal.cubic_c) ** (1 / 3)
    assert conn._cubic_window(k) == pytest.approx(conn._w_max, rel=1e-9)


@given(st.floats(min_value=0.0, max_value=60.0),
       st.floats(min_value=1.0, max_value=1e5))
@settings(max_examples=80, deadline=None)
def test_cubic_window_monotone_after_k(t, wmax_segments):
    ctx, link, conns = wan_conns(1, seed=133)
    conn = conns[0]
    conn._w_max = wmax_segments * conn.mss
    w1 = conn._cubic_window(t)
    w2 = conn._cubic_window(t + 1.0)
    cal = ctx.cal
    k = ((conn._w_max / conn.mss) * (1 - cal.cubic_beta) / cal.cubic_c) ** (1 / 3)
    if t >= k:
        assert w2 >= w1  # concave-up growth past the plateau
    assert w1 >= 2 * conn.mss  # floor


# --- loss behaviour -----------------------------------------------------------------


def test_parallel_wan_streams_saturate_and_lose():
    """Four streams on the 40G WAN link: the link saturates, cubic sees
    losses, yet aggregate goodput stays near the link rate."""
    ctx, link, conns = wan_conns(4, seed=134)
    ctx.sim.run(until=120.0)
    ctx.fluid.settle()
    total = sum(c.flow.transferred for c in conns)
    rate = total / 120.0
    losses = sum(c.stats.loss_events for c in conns)
    assert losses > 0  # the link was genuinely overdriven
    assert rate > 0.75 * link.rate  # cubic keeps the pipe mostly full
    for c in conns:
        c.close()


def test_single_stream_window_limited_when_clamped():
    """With the socket buffer clamped to 64 MB, a single WAN stream is
    window-limited at ~64MB/95ms, far below the link."""
    window = 64 << 20
    ctx, link, conns = wan_conns(1, seed=135, window=window)
    ctx.sim.run(until=60.0)
    ctx.fluid.settle()
    rate = conns[0].flow.transferred / 60.0
    ceiling = window / 0.095
    assert rate < 1.05 * ceiling
    assert rate > 0.5 * ceiling  # but it does approach it
    conns[0].close()
