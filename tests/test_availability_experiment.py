"""The ext-availability experiment: plan shape, the deterministic
fault-plan generator, env overrides, and a small end-to-end leg."""

import json

import pytest

from repro.core.experiments import ext_availability
from repro.core.experiments.availability_legs import (availability_leg,
                                                      fault_plan_for)
from repro.faults.plan import FaultPlan


def test_plan_shape():
    tasks = ext_availability.plan(quick=True, seed=0)
    # 1 size x 2 rates x 2 variants + the MTTR pair + determinism
    assert len(tasks) == 7
    labels = [t.label for t in tasks]
    assert labels == [
        "avail/journaled-x16-r0.5", "avail/amnesiac-x16-r0.5",
        "avail/journaled-x16-r1", "avail/amnesiac-x16-r1",
        "avail/mttr-journaled", "avail/mttr-amnesiac",
        "avail/determinism",
    ]
    # journaled/amnesiac pairs share a seed: same workload, same faults
    assert tasks[0].seed == tasks[1].seed
    assert tasks[2].seed == tasks[3].seed
    assert tasks[4].seed == tasks[5].seed


def test_plan_identities_are_stable():
    a = [t.identity() for t in ext_availability.plan(quick=True, seed=0)]
    b = [t.identity() for t in ext_availability.plan(quick=True, seed=0)]
    assert a == b
    assert len(set(a)) == len(a)  # no colliding cache keys


def test_fault_plan_for_is_deterministic_and_parses():
    kw = dict(n_pods=8, fault_rate=0.5, serve_s=4.0, crash_at=2.0)
    plan = fault_plan_for(**kw)
    assert plan == fault_plan_for(**kw)
    specs = FaultPlan.parse(plan).specs
    tor = [s for s in specs if s.category == "tor"]
    crash = [s for s in specs if s.kind == "crash"]
    assert len(tor) == 4  # round(0.5 x 8) evenly-spaced pod cuts
    assert len({s.selector for s in tor}) == 4  # distinct pods
    assert all(s.stagger > 0 for s in tor)
    assert len(crash) == 1 and crash[0].target == "transfer:*"
    # rate 0 with no crash is the empty plan
    assert fault_plan_for(n_pods=8, fault_rate=0.0, serve_s=4.0) == ""


def test_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_AVAIL_HOSTS", "8")
    monkeypatch.setenv("REPRO_AVAIL_RATE", "1.0")
    assert ext_availability.avail_sizes(quick=True) == (8,)
    assert ext_availability.fault_rates(quick=True) == (1.0,)
    tasks = ext_availability.plan(quick=True, seed=0)
    assert len(tasks) == 5  # 1x1x2 + mttr pair + determinism
    monkeypatch.setenv("REPRO_AVAIL_HOSTS", "not-a-number")
    with pytest.raises(ValueError, match="REPRO_AVAIL_HOSTS"):
        ext_availability.avail_sizes(quick=True)
    monkeypatch.setenv("REPRO_AVAIL_HOSTS", "-4")
    with pytest.raises(ValueError, match="non-negative"):
        ext_availability.avail_sizes(quick=True)


def test_env_overrides_change_cache_identity(monkeypatch):
    # The determinism anchor takes no sweep parameters, so it (alone)
    # keeps its identity across overrides; every swept leg re-keys.
    base = {t.identity() for t in ext_availability.plan(quick=True, seed=0)
            if t.label != "avail/determinism"}
    monkeypatch.setenv("REPRO_AVAIL_HOSTS", "8")
    over = {t.identity() for t in ext_availability.plan(quick=True, seed=0)
            if t.label != "avail/determinism"}
    assert base.isdisjoint(over)


def test_availability_leg_journal_beats_amnesia():
    """One small curve point end-to-end: the crash makes the difference.

    Same seed, same faults: the journaled broker must conserve jobs and
    bytes exactly; the amnesiac baseline loses work to the restart.
    """
    kw = dict(seed=4, cal=None, hosts=8, fault_rate=0.5, serve_s=3.0,
              horizon_s=5.0, crash_at=1.5)
    journaled = availability_leg(journal=True, **kw)
    amnesiac = availability_leg(journal=False, **kw)
    assert journaled["submitted"] == amnesiac["submitted"]  # same stream
    assert journaled["crashes"] >= 1 and amnesiac["crashes"] >= 1
    assert journaled["lost"] == 0 and journaled["audit_ok"]
    assert journaled["conserved"] and amnesiac["conserved"]
    assert amnesiac["lost"] > 0 and amnesiac["lost_bytes"] > 0.0
    assert journaled["availability"] >= amnesiac["availability"]
    # The leg is deterministic: same kwargs, same scorecard.
    again = availability_leg(journal=True, **kw)
    assert json.dumps(journaled, sort_keys=True) == json.dumps(
        again, sort_keys=True)


def test_leg_restores_ambient_fault_env(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "link-down@link:0,at=5,duration=1")
    availability_leg(seed=2, cal=None, hosts=8, fault_rate=0.0,
                     journal=True, serve_s=2.0, horizon_s=3.0, crash_at=1.0)
    import os
    assert os.environ["REPRO_FAULTS"] == "link-down@link:0,at=5,duration=1"
