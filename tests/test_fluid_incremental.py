"""Equivalence: the incremental allocator vs a brute-force full recompute.

The scheduler only recomputes the connected components of the
flow/resource sharing graph touched by a change; everything else keeps
its cached rate.  These tests drive randomized churn — flow starts,
stops, cap changes and capacity changes — from named ``RngRegistry``
streams and, after *every* mutation, compare each active flow's rate
against a from-scratch progressive-filling reference over the full flow
set (the pre-incremental algorithm).
"""

import math

import pytest

from repro.sim import FluidFlow, FluidResource, FluidScheduler, Simulator
from repro.sim.rng import RngRegistry


def brute_force_rates(active):
    """Max-min fair rates via full-recompute progressive filling."""
    flows = list(active)
    if not flows:
        return {}
    rate = {f: 0.0 for f in flows}
    unfrozen = set(flows)
    resources: list[FluidResource] = []
    seen: set[FluidResource] = set()
    for f in flows:
        for r in f._weights:
            if r not in seen:
                seen.add(r)
                resources.append(r)

    def used(r):
        return sum(f._weights.get(r, 0.0) * rate[f] for f in flows)

    guard = 0
    while unfrozen:
        guard += 1
        assert guard <= 4 * len(flows) + 8, "reference filling failed to converge"
        delta = math.inf
        for r in resources:
            wsum = sum(f._weights[r] for f in unfrozen if r in f._weights)
            if wsum > 0 and math.isfinite(r.capacity):
                d = (r.capacity - used(r)) / wsum
                if d < delta:
                    delta = d if d > 0.0 else 0.0
        for f in unfrozen:
            if f.cap is not None:
                d = f.cap - rate[f]
                if d < delta:
                    delta = d
        assert math.isfinite(delta), "unbounded flow in reference filling"
        if delta < 0.0:
            delta = 0.0
        if delta > 0:
            for f in unfrozen:
                rate[f] += delta
        newly = [
            f
            for f in unfrozen
            if f.cap is not None and rate[f] >= f.cap - 1e-9 * max(1.0, f.cap)
        ]
        frozen = set(newly)
        for r in resources:
            if not math.isfinite(r.capacity):
                continue
            if r.capacity - used(r) <= 1e-9 * max(1.0, r.capacity):
                for f in unfrozen:
                    if r in f._weights and f not in frozen:
                        frozen.add(f)
                        newly.append(f)
        if not newly:
            newly = list(unfrozen)
        unfrozen -= set(newly)
    return rate


def assert_matches_reference(sched, resources):
    expected = brute_force_rates(sched.active_flows)
    for f, want in expected.items():
        assert f.rate == pytest.approx(want, rel=1e-6, abs=1e-6), f.name
    for r in resources:
        want_load = sum(
            f._weights[r] * f.rate for f in sched.active_flows if r in f._weights
        )
        assert r.load == pytest.approx(want_load, rel=1e-9, abs=1e-6), r.name


@pytest.mark.parametrize("seed", [0, 1, 2, 7, 42])
def test_incremental_matches_brute_force_under_churn(seed):
    rng = RngRegistry(seed=seed)
    topo = rng.stream("topology")
    ops = rng.stream("ops")
    sim = Simulator()
    sched = FluidScheduler(sim)
    n_res = int(topo.integers(2, 7))
    resources = [
        FluidResource(sched, float(topo.uniform(20.0, 500.0)), f"r{i}")
        for i in range(n_res)
    ]
    active: list[FluidFlow] = []
    made = 0
    for _ in range(120):
        choice = ops.random()
        if choice < 0.45 or not active:
            k = int(ops.integers(1, min(3, n_res) + 1))
            picks = ops.choice(n_res, size=k, replace=False)
            path = [(resources[int(i)], float(ops.uniform(0.5, 2.5))) for i in picks]
            cap = float(ops.uniform(5.0, 400.0)) if ops.random() < 0.4 else None
            flow = FluidFlow(path, size=None, cap=cap, name=f"f{made}")
            made += 1
            sched.start(flow)
            active.append(flow)
        elif choice < 0.70:
            flow = active.pop(int(ops.integers(0, len(active))))
            sched.stop(flow)
        elif choice < 0.85:
            flow = active[int(ops.integers(0, len(active)))]
            cap = float(ops.uniform(5.0, 400.0)) if ops.random() < 0.8 else None
            sched.set_cap(flow, cap)
        else:
            res = resources[int(ops.integers(0, n_res))]
            res.set_capacity(float(ops.uniform(20.0, 500.0)))
        assert_matches_reference(sched, resources)
    assert sched.stats.allocations > 0
    assert sched.stats.flows_recomputed > 0


@pytest.mark.parametrize("seed", [3, 11])
def test_incremental_matches_brute_force_with_completions(seed):
    """Sized flows finishing on their own also leave a max-min allocation."""
    rng = RngRegistry(seed=seed)
    topo = rng.stream("topology")
    ops = rng.stream("ops")
    sim = Simulator()
    sched = FluidScheduler(sim)
    n_res = int(topo.integers(2, 5))
    resources = [
        FluidResource(sched, float(topo.uniform(50.0, 300.0)), f"r{i}")
        for i in range(n_res)
    ]

    def starter(delay, flow):
        yield sim.timeout(delay)
        sched.start(flow)

    for i in range(25):
        k = int(ops.integers(1, min(3, n_res) + 1))
        picks = ops.choice(n_res, size=k, replace=False)
        path = [(resources[int(j)], float(ops.uniform(0.5, 2.0))) for j in picks]
        flow = FluidFlow(
            path,
            size=float(ops.uniform(100.0, 3000.0)),
            cap=float(ops.uniform(10.0, 200.0)) if ops.random() < 0.3 else None,
            name=f"f{i}",
        )
        sim.process(starter(float(ops.uniform(0.0, 30.0)), flow))

    t = 0.0
    while t < 90.0:
        t += 1.5
        sim.run(until=t)
        assert_matches_reference(sched, resources)
    sim.run()
    assert_matches_reference(sched, resources)
    assert not sched.active_flows  # everything sized eventually completes
