"""The machine model generalizes past two sockets (4-node boxes)."""

import pytest

from repro.hw import Machine, MesiCache, MesiState
from repro.kernel import NumaPolicy, place_region
from repro.sim.context import Context
from repro.sim.fluid import FluidFlow


def quad():
    ctx = Context.create(seed=41)
    return ctx, Machine(ctx, "quad", n_sockets=4, cores_per_socket=8,
                        mem_bytes_per_node=64 << 30)


def test_quad_socket_topology():
    ctx, m = quad()
    assert m.n_nodes == 4
    assert m.n_cores == 32
    assert m.socket_of_core(31) == 3
    # 12 directed QPI links between 4 sockets
    pairs = [(a, b) for a in range(4) for b in range(4) if a != b]
    for a, b in pairs:
        assert m.qpi(a, b) is not m.qpi(b, a)


def test_quad_socket_policies():
    p = NumaPolicy.default()
    assert p.execution_fractions(4) == {n: 0.25 for n in range(4)}
    b = NumaPolicy.biased(2, 0.7)
    fracs = b.execution_fractions(4)
    assert fracs[2] == pytest.approx(0.7)
    assert fracs[0] == pytest.approx(0.1)
    placement = place_region(1 << 20, NumaPolicy.interleave(0, 1, 2, 3), 4)
    assert placement.node_fractions() == {n: 0.25 for n in range(4)}


def test_quad_socket_remote_paths_use_correct_qpi():
    ctx, m = quad()
    path = m.mem_path(1, 3)
    resources = [r for r, _ in path]
    assert m.qpi(1, 3) in resources
    assert m.mem_bank(3).bandwidth in resources
    assert m.qpi(3, 1) not in resources


def test_quad_socket_independent_local_bandwidth():
    """Four node-local flows each get their full bank (no interference)."""
    ctx, m = quad()
    flows = []
    for n in range(4):
        f = FluidFlow([(m.mem_bank(n).bandwidth, 1.0)], size=None,
                      name=f"f{n}")
        ctx.fluid.start(f)
        flows.append(f)
    ctx.sim.run(until=1.0)
    ctx.fluid.settle()
    cap = ctx.cal.mem_bandwidth_per_node
    for f in flows:
        assert f.transferred == pytest.approx(cap, rel=1e-6)
    for f in flows:
        ctx.fluid.stop(f)


def test_mesi_scales_to_four_agents():
    cache = MesiCache(4)
    for agent in range(4):
        cache.read(0, agent)
    assert len(cache.sharers(0)) == 4
    out = cache.write(0, 0)
    assert out.invalidations == 3
    assert cache.state(0, 0) is MesiState.MODIFIED
