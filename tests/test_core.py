"""Tests for the core layer: calibration, tuning, metrics, breakdown,
report, and the composed EndToEndSystem."""

import pytest

from repro.core.breakdown import BlockDelayBreakdown, fig4_categories
from repro.core.calibration import CALIBRATION
from repro.core.metrics import CpuBreakdown, RunResult
from repro.core.report import ExperimentReport
from repro.core.system import EndToEndSystem
from repro.core.tuning import TuningPolicy
from repro.kernel.accounting import CpuAccounting
from repro.util.units import GB, MIB, to_gbps


# --- calibration ------------------------------------------------------------------


def test_calibration_is_frozen():
    with pytest.raises(Exception):
        CALIBRATION.qpi_bandwidth = 1.0  # type: ignore[misc]


def test_calibration_replace_for_ablations():
    alt = CALIBRATION.replace(qpi_bandwidth=1e9)
    assert alt.qpi_bandwidth == 1e9
    assert CALIBRATION.qpi_bandwidth != 1e9
    assert alt.mem_bandwidth_per_node == CALIBRATION.mem_bandwidth_per_node


def test_calibration_derived_rates():
    assert CALIBRATION.derived_ib_data_rate() < CALIBRATION.ib_fdr_line_rate
    r9000 = CALIBRATION.derived_roce_data_rate(9000)
    r1500 = CALIBRATION.derived_roce_data_rate(1500)
    assert r1500 < r9000 < CALIBRATION.roce_line_rate


def test_stream_consistency():
    """Raw bank capacity = STREAM-reported * 4/3 (write-allocate)."""
    total_raw = 2 * CALIBRATION.mem_bandwidth_per_node
    assert total_raw == pytest.approx(CALIBRATION.stream_triad_total * 4 / 3,
                                      rel=0.01)


# --- tuning ---------------------------------------------------------------------


def test_tuning_presets():
    d = TuningPolicy.default()
    n = TuningPolicy.numa_bound()
    assert d.target_tuning == "default" and not d.bind_apps and not d.tune_irq
    assert n.target_tuning == "numa" and n.bind_apps and n.tune_irq
    assert d.label == "default" and n.label == "NUMA-tuned"


def test_tuning_validation():
    with pytest.raises(ValueError):
        TuningPolicy(target_tuning="bogus")


# --- metrics ---------------------------------------------------------------------


def test_cpu_breakdown_from_accounting():
    acc = CpuAccounting("x")
    acc.add("copy", 5.0)
    acc.add("usr_proto", 2.5)
    b = CpuBreakdown.from_accounting(acc, wall=10.0)
    assert b.get("copy") == pytest.approx(50.0)
    assert b.total == pytest.approx(75.0)
    assert b.sys == pytest.approx(50.0)
    assert b.usr == pytest.approx(25.0)
    with pytest.raises(ValueError):
        CpuBreakdown.from_accounting(acc, wall=0.0)


def test_run_result_summary():
    r = RunResult(label="x", total_bytes=125e9, duration=10.0)
    assert r.goodput_gbps == pytest.approx(100.0)
    assert "100.0 Gbps" in r.summary()


# --- breakdown ------------------------------------------------------------------


def test_fig4_categories_maps_labels():
    acc = CpuAccounting("t")
    acc.add("copy", 1.0)
    acc.add("sys_proto", 2.0)
    cats = fig4_categories([acc], wall=10.0)
    assert cats["data copy"] == pytest.approx(10.0)
    assert cats["kernel protocol"] == pytest.approx(20.0)


def test_block_delay_breakdown():
    b = BlockDelayBreakdown.from_rates(
        block_size=4 * MIB, load_rate=5e9, wire_rate=4.9e9, offload_rate=4e9,
        propagation=83e-6,
    )
    assert b.bottleneck() == "offload"
    assert b.total_seconds > b.pipelined_seconds
    assert 2.5 < b.speedup_from_pipelining() <= 3.0
    with pytest.raises(ValueError):
        BlockDelayBreakdown.from_rates(0, 1, 1, 1)


# --- report ----------------------------------------------------------------------


def test_report_render_and_status():
    rep = ExperimentReport("figX", "demo", data_headers=["a", "b"])
    rep.add_check("m1", 1.0, 1.05, ok=True)
    rep.add_check("m2", 2.0, 9.0, ok=False)
    rep.add_check("info", "-", "-")
    rep.add_row([1, 2])
    text = rep.render()
    assert "figX" in text and "DIVERGES" in text and "OK" in text
    assert not rep.all_ok


def test_report_all_ok_when_no_failures():
    rep = ExperimentReport("figY", "demo")
    rep.add_check("m", 1, 1, ok=True)
    rep.add_check("info", "-", "-")
    assert rep.all_ok


# --- EndToEndSystem ---------------------------------------------------------------


@pytest.fixture(scope="module")
def tuned_system():
    return EndToEndSystem.lan_testbed(TuningPolicy.numa_bound(), seed=42,
                                      lun_size=2 * GB)


def test_system_construction(tuned_system):
    s = tuned_system
    assert len(s.frontend_links) == 3
    assert len(s.san_a.links) == 2 and len(s.san_b.links) == 2
    assert len(s.tgt_a.luns) == 6
    assert len(s.fs_a) == 6 and len(s.fs_b) == 6
    assert all(fs.fstype == "xfs" for fs in s.fs_a)


def test_system_fio_ceiling_then_rftp(tuned_system):
    s = tuned_system
    ceiling = s.fio_file_write_ceiling(runtime=10.0)
    assert to_gbps(ceiling) == pytest.approx(92.3, rel=0.05)
    rftp = s.run_rftp_transfer(duration=15.0)
    assert rftp.goodput == pytest.approx(ceiling, rel=0.08)
    assert rftp.series is not None and len(rftp.series) >= 10


def test_system_default_tuning_slower():
    tuned = EndToEndSystem.lan_testbed(TuningPolicy.numa_bound(), seed=50,
                                       lun_size=2 * GB)
    t = tuned.run_rftp_transfer(duration=15.0)
    untuned = EndToEndSystem.lan_testbed(TuningPolicy.default(), seed=51,
                                         lun_size=2 * GB)
    u = untuned.run_rftp_transfer(duration=15.0)
    assert t.goodput > u.goodput


def test_system_bidirectional_improves_aggregate():
    s1 = EndToEndSystem.lan_testbed(TuningPolicy.numa_bound(), seed=60,
                                    lun_size=2 * GB)
    uni = s1.run_rftp_transfer(duration=15.0)
    s2 = EndToEndSystem.lan_testbed(TuningPolicy.numa_bound(), seed=61,
                                    lun_size=2 * GB)
    bi = s2.run_rftp_bidirectional(duration=15.0)
    gain = bi.goodput / uni.goodput
    assert 1.5 < gain <= 2.0  # paper: 1.83x


def test_system_ext4_variant_builds():
    s = EndToEndSystem.lan_testbed(TuningPolicy.numa_bound(), seed=70,
                                   lun_size=GB, fs_kind="ext4", n_luns=2)
    assert all(fs.fstype == "ext4" for fs in s.fs_a)
