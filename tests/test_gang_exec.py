"""Gang execution: grouping, defection, cache identity, projection dedup.

The contract under test mirrors the executor's: ``REPRO_GANG`` changes
*how* a grid computes — one batched scenario program vs one task at a
time — never what it computes.  Gang and per-task runs must be
indistinguishable down to the bytes of the assembled report, gang
membership must be invisible to the result cache, and anything a kernel
cannot batch exactly (ambient faults, broken kernels, singleton groups)
must defect to the per-task path with zero behavior change.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.calibration import CALIBRATION, tracking_calibration
from repro.core.experiments import ext_sensitivity
from repro.core.sensitivity import gang_cells, run_sensitivity, sensitivity_tasks
from repro.exec import (
    DEFECT,
    ExecContext,
    GangSpec,
    GangStats,
    ResultCache,
    SimTask,
    executor,
    gang_calgrid,
    gang_mode,
    run_tasks,
)
from repro.exec.gang import EvalError, run_projected
from repro.faults.plan import REPRO_FAULTS_ENV


def scale_leg(*, seed, cal, factor):
    """Cheap calgrid target: reads one constant, scales it."""
    return cal.qpi_bandwidth * factor + seed


def _gang_delta(fn):
    """Run *fn*, return the GangStats delta it produced."""
    before = GangStats.process_totals()
    out = fn()
    after = GangStats.process_totals()
    return out, {k: after[k] - before[k] for k in after}


def _calgrid_tasks(n=4, factor=2.0):
    """n gang-eligible tasks differing only in calibration."""
    return [
        gang_calgrid(SimTask("tests.test_gang_exec:scale_leg",
                             {"factor": factor}, seed=3,
                             cal=CALIBRATION.replace(qpi_bandwidth=1e9 + i)))
        for i in range(n)
    ]


# -- grouping and defection in run_tasks ------------------------------------

def test_calgrid_gang_matches_per_task_bitwise():
    tasks = _calgrid_tasks(5)
    with executor(gang="off"):
        solo = run_tasks(tasks)
    (ganged, delta) = _gang_delta(lambda: run_tasks(tasks, ExecContext(gang="auto")))
    assert ganged == solo == [t.execute() for t in tasks]
    assert delta["scenarios_ganged"] == 5
    assert delta["scenarios_defected"] == 0
    assert delta["groups"] == 1


def test_singleton_group_runs_solo():
    tasks = _calgrid_tasks(1)
    (results, delta) = _gang_delta(
        lambda: run_tasks(tasks, ExecContext(gang="auto")))
    assert results == [tasks[0].execute()]
    assert delta["scenarios_solo"] == 1
    assert delta["scenarios_ganged"] == 0
    assert delta["groups"] == 0


def test_ambient_fault_plan_defects_whole_group(monkeypatch):
    monkeypatch.setenv(REPRO_FAULTS_ENV, "link-down@link:1,at=5,duration=2")
    tasks = _calgrid_tasks(4)
    (results, delta) = _gang_delta(
        lambda: run_tasks(tasks, ExecContext(gang="auto")))
    assert results == [t.execute() for t in tasks]
    assert delta["scenarios_defected"] == 4
    assert delta["scenarios_ganged"] == 0


def test_sensitivity_kernel_defects_under_ambient_faults(monkeypatch):
    tasks = sensitivity_tasks(constants=("qpi_bandwidth",))
    monkeypatch.setenv(REPRO_FAULTS_ENV, "link-down@link:1,at=5,duration=2")
    assert gang_cells(tasks) == [DEFECT] * len(tasks)


def broken_kernel(tasks):
    raise RuntimeError("kernel exploded")


def short_kernel(tasks):
    return [DEFECT] * (len(tasks) - 1)


@pytest.mark.parametrize("kernel", ["broken_kernel", "short_kernel"])
def test_broken_kernel_defects_instead_of_breaking(kernel):
    spec = GangSpec(kernel=f"tests.test_gang_exec:{kernel}", key="k")
    tasks = [SimTask("tests.test_gang_exec:scale_leg", {"factor": float(1 + i)},
                     seed=i, cal=CALIBRATION, gang=spec) for i in range(3)]
    (results, delta) = _gang_delta(
        lambda: run_tasks(tasks, ExecContext(gang="auto")))
    assert results == [t.execute() for t in tasks]
    assert delta["scenarios_defected"] == 3
    assert delta["scenarios_ganged"] == 0


def test_gang_off_never_invokes_kernel(monkeypatch):
    tasks = _calgrid_tasks(3)
    (_, delta) = _gang_delta(lambda: run_tasks(tasks, ExecContext(gang="off")))
    assert all(v == 0 for v in delta.values())
    monkeypatch.setenv("REPRO_GANG", "off")
    (_, delta) = _gang_delta(lambda: run_tasks(tasks, ExecContext()))
    assert all(v == 0 for v in delta.values())


def test_gang_mode_validation(monkeypatch):
    monkeypatch.setenv("REPRO_GANG", "sideways")
    with pytest.raises(ValueError, match="REPRO_GANG"):
        gang_mode()
    with pytest.raises(ValueError, match="gang"):
        ExecContext(gang="sideways")
    monkeypatch.setenv("REPRO_GANG", "off")
    assert ExecContext(gang="auto").gang_enabled  # override beats the env


# -- cache identity ---------------------------------------------------------

def test_gang_membership_excluded_from_identity():
    plain = SimTask("tests.test_gang_exec:scale_leg", {"factor": 2.0}, seed=1)
    ganged = gang_calgrid(plain)
    assert ganged.gang is not None
    assert ganged.identity() == plain.identity()
    assert ganged.cache_key("f" * 16) == plain.cache_key("f" * 16)


def test_partially_cached_grid_gangs_only_the_misses(tmp_path):
    tasks = _calgrid_tasks(6)
    cache = ResultCache(tmp_path / "cache")
    # Warm the cache with two scenarios run solo (no gang metadata).
    with executor(cache=cache, gang="off"):
        warm = run_tasks([t for t in tasks[:2]])
    assert cache.stats.stores == 2

    (results, delta) = _gang_delta(
        lambda: run_tasks(tasks, ExecContext(cache=cache, gang="auto")))
    assert results[:2] == warm
    assert results == [t.execute() for t in tasks]
    assert cache.stats.hits == 2
    assert delta["scenarios_ganged"] == 4  # only the misses ganged
    assert delta["scenarios_defected"] == 0


def test_cache_entry_records_gang_provenance(tmp_path):
    tasks = _calgrid_tasks(2)
    cache = ResultCache(tmp_path / "cache")
    run_tasks(tasks, ExecContext(cache=cache, gang="auto"))
    path = cache._path(cache.key_for(tasks[0]))
    assert pickle.loads(path.read_bytes())["via"] == "gang"
    # Provenance is informational: the solo path replays the entry.
    hit, value = cache.get(tasks[0])
    assert hit and value == tasks[0].execute()


def test_cache_entry_without_via_key_still_loads(tmp_path):
    task = SimTask("tests.test_gang_exec:scale_leg", {"factor": 2.0}, seed=1)
    cache = ResultCache(tmp_path / "cache")
    key = cache.key_for(task)
    path = cache._path(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps({"key": key, "result": 42.0}))
    hit, value = cache.get(task)
    assert hit and value == 42.0


# -- the projection machinery ----------------------------------------------

def test_run_projected_shares_only_provably_equal_scenarios():
    evals = []

    def leg(cal):
        evals.append(1)
        return cal.qpi_bandwidth * 2.0

    base = CALIBRATION
    cals = [
        base,
        base.replace(memcpy_rate_local=1.0),  # unread constant: shares
        base.replace(qpi_bandwidth=5e9),      # read constant: re-runs
        base.replace(qpi_bandwidth=5e9),      # same projection: shares
    ]
    values = run_projected(leg, cals)
    assert values == [base.qpi_bandwidth * 2.0, base.qpi_bandwidth * 2.0,
                      1e10, 1e10]
    assert len(evals) == 2


def test_run_projected_failures_never_shared():
    calls = []

    def leg(cal):
        calls.append(1)
        raise ValueError("leg failed")

    values = run_projected(leg, [CALIBRATION, CALIBRATION])
    assert all(isinstance(v, EvalError) for v in values)
    assert len(calls) == 2  # an identical later scenario re-runs, re-fails


def test_replace_on_tracked_calibration_marks_carried_fields():
    import dataclasses

    reads: set = set()
    tracked = tracking_calibration(CALIBRATION, reads)
    tracked.replace(qpi_bandwidth=1.0)
    # replace() reads every field it carries over, so the projection
    # covers them all; the overridden field's old value is (correctly)
    # not marked — the result cannot depend on it.
    assert reads == {f.name for f in dataclasses.fields(CALIBRATION)} - {
        "qpi_bandwidth"}


# -- the sensitivity grid end to end ---------------------------------------

def test_sensitivity_grid_gang_matches_per_task():
    constants = ("qpi_bandwidth", "memcpy_rate_local")
    with executor(gang="off"):
        solo = run_sensitivity(constants=constants)
    (ganged, delta) = _gang_delta(lambda: run_sensitivity(constants=constants))
    assert ganged.outcomes == solo.outcomes
    assert delta["scenarios_ganged"] == 4
    assert delta["scenarios_defected"] == 0


def test_ext_sensitivity_report_byte_identical_gang_vs_off():
    with executor(gang="off"):
        off = ext_sensitivity.run(quick=True).render()
    with executor(gang="auto"):
        auto = ext_sensitivity.run(quick=True).render()
    assert auto == off


# -- the fingerprint memo ---------------------------------------------------

def test_code_fingerprint_memoized_per_process(monkeypatch):
    from repro.exec import fingerprint as fp

    value = fp.code_fingerprint()
    original = fp._package_root
    calls = []

    def counting_root():
        calls.append(1)
        return original()

    monkeypatch.setattr(fp, "_package_root", counting_root)
    monkeypatch.setattr(fp, "_DEFAULT", None)
    assert fp.code_fingerprint() == value
    assert fp.code_fingerprint() == value
    assert len(calls) == 1  # resolved once, memoized thereafter
    # pytest restores the module globals; the pre-test memo survives in
    # the next call via the untouched lru_cache on _fingerprint_of.
