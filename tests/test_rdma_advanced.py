"""Tests for advanced verbs: QP state machine, flush, scatter/gather."""

import numpy as np
import pytest

from repro.hw import Machine, Nic, NicKind
from repro.kernel import NumaPolicy, place_region
from repro.net.link import connect
from repro.rdma import (
    CompletionQueue,
    ConnectionManager,
    Opcode,
    ProtectionDomain,
    WorkRequest,
    WrStatus,
)
from repro.rdma.verbs import QpState, Sge
from repro.sim.context import Context


def setup_pair(seed=1):
    c = Context.create(seed=seed)
    a = Machine(c, "a", pcie_sockets=(0,))
    b = Machine(c, "b", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
    connect(na, nb, delay=83e-6)
    qp_a, qp_b, hs = ConnectionManager(c).connect_pair(na, nb, name="q")
    c.sim.run(until=hs)
    pd_a, pd_b = ProtectionDomain(a), ProtectionDomain(b)
    ConnectionManager.register_pd(pd_a)
    ConnectionManager.register_pd(pd_b)
    return c, a, b, qp_a, qp_b, pd_a, pd_b


def mr(pd, machine, size, fill=None):
    data = np.zeros(size, dtype=np.uint8)
    if fill is not None:
        data[:] = fill
    return pd.register(place_region(size, NumaPolicy.bind(0), 2), data=data)


# --- QP state machine -----------------------------------------------------------


def test_qp_starts_reset_then_rts():
    c = Context.create()
    a = Machine(c, "a", pcie_sockets=(0,))
    na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
    qp = __import__("repro.rdma.verbs", fromlist=["QueuePair"]).QueuePair(
        c, na, CompletionQueue(c))
    assert qp.state is QpState.RESET
    assert not qp.connected


def test_error_state_flushes_posted_receives():
    c, a, b, qp_a, qp_b, pd_a, pd_b = setup_pair()
    buf = mr(pd_b, b, 4096)
    qp_b.post_recv(WorkRequest(Opcode.RECV, buf, length=4096))
    qp_b.post_recv(WorkRequest(Opcode.RECV, buf, length=4096))
    flushed = qp_b.set_error()
    assert len(flushed) == 2
    assert all(f.status is WrStatus.WR_FLUSH_ERR for f in flushed)
    assert qp_b.state is QpState.ERROR
    # the CQ saw them too
    assert qp_b.recv_cq.poll().status is WrStatus.WR_FLUSH_ERR


def test_post_send_to_errored_qp_flushes():
    c, a, b, qp_a, qp_b, pd_a, pd_b = setup_pair(seed=2)
    src = mr(pd_a, a, 4096)
    qp_a.set_error()
    completion = c.sim.run(until=qp_a.post_send(
        WorkRequest(Opcode.SEND, src, length=4096)))
    assert completion.status is WrStatus.WR_FLUSH_ERR


def test_post_recv_to_errored_qp_flushes():
    c, a, b, qp_a, qp_b, pd_a, pd_b = setup_pair(seed=3)
    buf = mr(pd_b, b, 4096)
    qp_b.set_error()
    qp_b.post_recv(WorkRequest(Opcode.RECV, buf, length=4096))
    assert qp_b.recv_cq.poll().status is WrStatus.WR_FLUSH_ERR


def test_mid_flight_error_flushes_in_progress_wr():
    """An error raised between post and execution flushes the WR."""
    c, a, b, qp_a, qp_b, pd_a, pd_b = setup_pair(seed=4)
    src = mr(pd_a, a, 1 << 20, fill=1)
    dst = mr(pd_b, b, 1 << 20)
    done = qp_a.post_send(WorkRequest(
        Opcode.RDMA_WRITE, src, length=1 << 20, remote_rkey=dst.rkey))
    qp_a.set_error()  # before the doorbell latency elapses
    completion = c.sim.run(until=done)
    assert completion.status is WrStatus.WR_FLUSH_ERR
    assert (dst.data == 0).all()  # nothing was delivered


# --- scatter/gather -----------------------------------------------------------------


def test_wr_validation():
    c, a, b, qp_a, qp_b, pd_a, pd_b = setup_pair(seed=5)
    buf = mr(pd_a, a, 64)
    with pytest.raises(ValueError, match="local_mr or sge_list"):
        WorkRequest(Opcode.SEND)
    with pytest.raises(ValueError, match="not both"):
        WorkRequest(Opcode.SEND, buf, sge_list=(Sge(buf, 0, 8),))


def test_sge_length_is_sum_of_segments():
    c, a, b, qp_a, qp_b, pd_a, pd_b = setup_pair(seed=6)
    m1, m2 = mr(pd_a, a, 100), mr(pd_a, a, 200)
    wr = WorkRequest(Opcode.SEND,
                     sge_list=(Sge(m1, 0, 100), Sge(m2, 50, 150)))
    assert wr.length == 250
    assert len(wr.segments()) == 2


def test_sge_send_gathers_real_bytes():
    c, a, b, qp_a, qp_b, pd_a, pd_b = setup_pair(seed=7)
    m1 = mr(pd_a, a, 100, fill=1)
    m2 = mr(pd_a, a, 100, fill=2)
    dst = mr(pd_b, b, 200)
    qp_b.post_recv(WorkRequest(Opcode.RECV, dst, length=200))
    wr = WorkRequest(Opcode.SEND, sge_list=(Sge(m1, 0, 100), Sge(m2, 0, 100)))
    completion = c.sim.run(until=qp_a.post_send(wr))
    assert completion.status is WrStatus.SUCCESS
    assert (dst.data[:100] == 1).all()
    assert (dst.data[100:] == 2).all()


def test_sge_rdma_write_gathers():
    c, a, b, qp_a, qp_b, pd_a, pd_b = setup_pair(seed=8)
    m1 = mr(pd_a, a, 4096, fill=5)
    m2 = mr(pd_a, a, 4096, fill=6)
    dst = mr(pd_b, b, 8192)
    wr = WorkRequest(Opcode.RDMA_WRITE, remote_rkey=dst.rkey,
                     sge_list=(Sge(m1, 0, 4096), Sge(m2, 0, 4096)))
    completion = c.sim.run(until=qp_a.post_send(wr))
    assert completion.status is WrStatus.SUCCESS
    assert (dst.data[:4096] == 5).all()
    assert (dst.data[4096:] == 6).all()


def test_sge_out_of_range_segment_fails_locally():
    c, a, b, qp_a, qp_b, pd_a, pd_b = setup_pair(seed=9)
    m1 = mr(pd_a, a, 64)
    dst = mr(pd_b, b, 512)
    wr = WorkRequest(Opcode.RDMA_WRITE, remote_rkey=dst.rkey,
                     sge_list=(Sge(m1, 32, 64),))  # overruns m1
    completion = c.sim.run(until=qp_a.post_send(wr))
    assert completion.status is WrStatus.LOCAL_PROTECTION_ERROR
