"""Tests for dataset synthesis and the file-size transfer-time model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.rftp.dataset import (
    effective_bandwidth,
    synth_dataset,
    transfer_time_estimate,
)
from repro.util.units import GB, KIB, MIB


def rng():
    return np.random.default_rng(7)


def test_bulk_dataset_shape():
    ds = synth_dataset(rng(), 2 * GB, "bulk", bulk_file_size=256 << 20)
    assert ds.kind == "bulk"
    assert ds.n_files == pytest.approx(2 * GB / (256 << 20), abs=1)
    assert ds.total_bytes == pytest.approx(2 * GB, rel=0.01)
    assert len(set(ds.sizes)) == 1  # equal files


def test_small_dataset_shape():
    ds = synth_dataset(rng(), 64 * MIB, "small", small_file_size=256 * KIB)
    assert ds.n_files == 256
    assert ds.mean_size == pytest.approx(256 * KIB, rel=0.01)


def test_lognormal_dataset_heavy_tail():
    ds = synth_dataset(rng(), 2 * GB, "lognormal")
    assert ds.total_bytes == pytest.approx(2 * GB, rel=0.01)
    sizes = np.asarray(ds.sizes)
    # most files are smaller than the mean (heavy tail)
    assert np.mean(sizes < sizes.mean()) > 0.6


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        synth_dataset(rng(), GB, "zipf")


def test_transfer_time_affine_model():
    sizes = [MIB] * 10
    t = transfer_time_estimate(sizes, bandwidth=1e9, per_file_overhead=0.01)
    assert t == pytest.approx(10 * MIB / 1e9 + 10 * 0.01)


def test_pipelining_amortizes_overhead():
    sizes = [64 * KIB] * 1000
    plain = transfer_time_estimate(sizes, 1e9, 1e-3, pipeline_depth=1)
    piped = transfer_time_estimate(sizes, 1e9, 1e-3, pipeline_depth=10)
    assert piped < plain
    # overhead term shrinks exactly 10x
    data = 1000 * 64 * KIB / 1e9
    assert (plain - data) / (piped - data) == pytest.approx(10.0)


def test_effective_bandwidth_limits():
    big = [GB]
    tiny = [4096] * (GB // 4096)
    bw = 1e9
    assert effective_bandwidth(big, bw, 1e-3) == pytest.approx(bw, rel=0.01)
    assert effective_bandwidth(tiny, bw, 1e-3) < 0.01 * bw


def test_model_validation():
    with pytest.raises(ValueError):
        transfer_time_estimate([1], bandwidth=0, per_file_overhead=0)
    with pytest.raises(ValueError):
        transfer_time_estimate([1], bandwidth=1, per_file_overhead=-1)


@given(
    st.integers(min_value=1, max_value=200),
    st.floats(min_value=1e6, max_value=1e10),
    st.floats(min_value=0.0, max_value=0.1),
)
@settings(max_examples=60, deadline=None)
def test_goodput_never_exceeds_bandwidth(n_files, bw, ovh):
    sizes = [MIB] * n_files
    eff = effective_bandwidth(sizes, bw, ovh)
    assert eff <= bw * (1 + 1e-9)
    # and is monotone in per-file overhead
    assert eff >= effective_bandwidth(sizes, bw, ovh + 0.01)
