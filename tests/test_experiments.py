"""Integration: every table/figure experiment reproduces its paper anchors.

These are the repository's headline tests — each runs the same code the
benchmark harness runs (quick mode) and asserts every check in the
report passed.
"""

import pytest

from repro.core import experiments as E


def _assert_ok(report):
    failed = [c for c in report.checks if c.ok is False]
    assert not failed, "diverging checks:\n" + "\n".join(
        f"  {c.metric}: paper={c.paper} measured={c.measured}" for c in failed
    )


@pytest.mark.parametrize("name", sorted(E.ALL_FIGURES))
def test_figure_reproduces(name):
    report = E.ALL_FIGURES[name].run(quick=True)
    assert report.checks, f"{name} has no checks"
    _assert_ok(report)


@pytest.mark.parametrize("name", sorted(E.ALL_ABLATIONS))
def test_ablation_reproduces(name):
    report = E.ALL_ABLATIONS[name].run(quick=True)
    assert report.checks, f"{name} has no checks"
    _assert_ok(report)


def test_reports_render_nonempty():
    report = E.exp_table1.run(quick=True)
    text = report.render()
    assert "table1" in text
    assert len(text.splitlines()) > 5


def test_experiment_registry_complete():
    assert set(E.ALL_FIGURES) == {
        "motivating", "table1", "fig03", "fig04", "fig05", "fig07", "fig08",
        "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
    }
    assert set(E.ALL_ABLATIONS) == {
        "ssd", "threads", "fs", "rdma-ops", "luns", "cache",
        "mtu", "credits", "tcp-wan", "gridftp-procs", "latency-load",
        "tuning-value",
    }
    assert set(E.ALL_EXTENSIONS) == {
        "wan-e2e", "sensitivity", "filesize-mix", "100g", "recovery",
        "service", "fleet", "availability",
    }


@pytest.mark.parametrize("name", sorted(E.ALL_EXTENSIONS))
def test_extension_reproduces(name):
    report = E.ALL_EXTENSIONS[name].run(quick=True)
    assert report.checks, f"{name} has no checks"
    _assert_ok(report)
