"""Failure domains: wildcard/range selectors, hierarchical targets
(``host:``/``tor:``/``power:``), staggered correlated expansion, and
the shard-friendly silent-miss semantics."""

import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.faults.plan import parse_range
from repro.hw import Machine, Nic, NicKind
from repro.net.link import connect
from repro.sim.context import Context


def mesh(seed=91, faults="", n_links=4):
    """One context with *n_links* registered links and an armed plan."""
    ctx = Context.create(seed=seed)
    inj = FaultInjector(ctx, FaultPlan.parse(faults))
    links = []
    for i in range(n_links):
        a = Machine(ctx, f"a{i}", pcie_sockets=(0,))
        b = Machine(ctx, f"b{i}", pcie_sockets=(0,))
        na = Nic(a, a.pcie_slots[0], NicKind.ROCE_QDR)
        nb = Nic(b, b.pcie_slots[0], NicKind.ROCE_QDR)
        links.append(connect(na, nb, name=f"rail{i}"))
    return ctx, inj, links


# --- selector parsing & fail-fast validation --------------------------------------


def test_parse_range():
    assert parse_range("0-3") == (0, 3)
    assert parse_range("7-7") == (7, 7)
    assert parse_range("3") is None
    assert parse_range("*") is None
    assert parse_range("a-b") is None
    assert parse_range("-3") is None


def test_range_selector_validation():
    FaultSpec.parse("link-down@link:0-3,at=1")  # ok
    with pytest.raises(ValueError, match="lo <= hi"):
        FaultSpec.parse("link-down@link:3-0,at=1")
    with pytest.raises(ValueError, match="do not apply to failure domains"):
        FaultSpec.parse("link-down@tor:0-3,at=1")


def test_domain_target_validation():
    for target in ("host:web1", "tor:3", "power:0", "tor:*"):
        spec = FaultSpec.parse(f"link-down@{target},at=1,duration=1")
        assert spec.is_domain
    spec = FaultSpec.parse("link-down@link:2,at=1")
    assert not spec.is_domain
    with pytest.raises(ValueError, match="category"):
        FaultSpec.parse("link-down@rack:0,at=1")
    with pytest.raises(ValueError, match="stagger"):
        FaultSpec.parse("link-down@tor:0,at=1,stagger=-0.5")


def test_canonical_omits_default_stagger():
    """Plans without stagger keep their pre-domain canonical form
    (cache identities of old plans must not shift)."""
    plain = FaultPlan.parse("link-down@link:1,at=5,duration=2")
    assert "stagger" not in plain.canonical()
    staggered = FaultPlan.parse("link-down@tor:1,at=5,duration=2,stagger=0.1")
    assert '"stagger":0.1' in staggered.canonical()
    # Spelling invariance still holds.
    assert (FaultPlan.parse("link-down@tor:1,stagger=0.1,at=5,duration=2")
            .canonical() == staggered.canonical())


# --- range and wildcard resolution ------------------------------------------------


def test_range_selector_fails_exact_slice():
    ctx, inj, links = mesh(faults="link-down@link:1-2,at=1,duration=5")
    ctx.sim.run(until=2.0)
    assert [lk.failed for lk in links] == [False, True, True, False]


def test_wildcard_selector_fails_all():
    ctx, inj, links = mesh(faults="link-down@link:*,at=1,duration=5")
    ctx.sim.run(until=2.0)
    assert all(lk.failed for lk in links)


# --- hierarchical domain expansion ------------------------------------------------


def test_tor_domain_fails_registered_pod():
    ctx, inj, links = mesh(faults="link-down@tor:0,at=1,duration=1")
    inj.register_domain("tor", "0", links[:2])
    inj.register_domain("tor", "1", links[2:])
    ctx.sim.run(until=1.5)
    assert [lk.failed for lk in links] == [True, True, False, False]
    ctx.sim.run(until=3.0)
    assert not any(lk.failed for lk in links)  # outage over, pod restored
    assert inj.stats.domain_faults == 1
    assert inj.stats.faults_injected == 2  # one per expanded link


def test_domain_wildcard_spans_all_groups():
    ctx, inj, links = mesh(faults="link-down@power:*,at=1,duration=5")
    inj.register_domain("power", "0", links[:2])
    inj.register_domain("power", "1", links[2:])
    # Overlap: the same link in two domains is applied once.
    inj.register_domain("power", "1", links[:1])
    ctx.sim.run(until=2.0)
    assert all(lk.failed for lk in links)
    assert inj.stats.faults_injected == len(links)


def test_domain_miss_is_silent_not_unresolved():
    """Under sharding a cell only registers its own pods: a plan clause
    naming another cell's domain is expected, not a plan error."""
    ctx, inj, links = mesh(faults="link-down@tor:7,at=1,duration=1")
    inj.register_domain("tor", "0", links)
    ctx.sim.run(until=2.0)
    assert inj.stats.unresolved == 0
    assert inj.stats.domain_faults == 0
    assert not any(lk.failed for lk in links)
    # A missing *component* selector is still counted as unresolved.
    ctx2, inj2, _ = mesh(faults="link-down@link:99,at=1,duration=1")
    ctx2.sim.run(until=2.0)
    assert inj2.stats.unresolved == 1


def test_stagger_spreads_cascade():
    ctx, inj, links = mesh(
        faults="link-down@tor:0,at=1,duration=10,stagger=0.2")
    inj.register_domain("tor", "0", links)
    ctx.sim.run(until=1.0)
    assert not any(lk.failed for lk in links)  # offsets are strictly later
    ctx.sim.run(until=5.0)
    assert all(lk.failed for lk in links)


def test_stagger_deterministic_per_seed():
    def fire_times(seed):
        ctx, inj, links = mesh(
            seed=seed, faults="link-down@power:0,at=1,duration=10,stagger=0.3")
        inj.register_domain("power", "0", links)
        times = {}
        for lk in links:
            def capture(link=lk):
                orig = link.fail

                def wrapped():
                    times[link.name] = ctx.sim.now
                    orig()
                return wrapped
            lk.fail = capture()
        ctx.sim.run(until=8.0)
        return times

    first, second = fire_times(17), fire_times(17)
    assert first == second and len(first) == 4
    assert len(set(first.values())) > 1  # genuinely spread, not one instant
    assert fire_times(18) != first  # seeded from the context RNG


def test_crash_reaches_registered_transfer():
    class Listener:
        crashed_with = None

        def on_crash(self, restart_delay):
            self.crashed_with = restart_delay

    ctx, inj, _ = mesh(faults="crash@transfer:*,at=1,duration=0.5")
    listener = Listener()
    inj.add_transfer("svc", listener)
    ctx.sim.run(until=2.0)
    assert listener.crashed_with == 0.5
